#pragma once

/// \file serialize.hpp
/// Binary serialization primitives of the design database: a growable
/// little-endian writer and a strictly bounds-checked reader that fails
/// closed — any overrun, oversized count or malformed record flips the
/// reader into a sticky failed state and every subsequent read returns a
/// zero value, so decoders can run to completion and check ok() once.
/// Typed errors (DbError / DbStatus) are shared by the container
/// (design_db.hpp) and the codecs (codec.hpp).

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace m3d::db {

/// Typed failure classes of database load/save. Every corrupt-input path
/// maps to one of these (the fault-injection tests assert the mapping).
enum class DbError {
  kNone = 0,
  kIoError,        ///< file missing / unreadable / unwritable.
  kBadMagic,       ///< file does not start with the M3DDB magic.
  kBadVersion,     ///< container format version not supported.
  kTruncated,      ///< structure runs past the end of the file.
  kHashMismatch,   ///< section table or payload hash check failed.
  kMissingSection, ///< a required section is absent.
  kMalformed,      ///< section payload fails structural validation.
};

const char* dbErrorName(DbError e);

struct DbStatus {
  DbError error = DbError::kNone;
  std::string detail;

  bool ok() const { return error == DbError::kNone; }
  static DbStatus success() { return DbStatus{}; }
  static DbStatus fail(DbError e, std::string d) { return DbStatus{e, std::move(d)}; }
};

/// Append-only little-endian byte-stream writer.
class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { le(&v, sizeof v); }
  void u64(std::uint64_t v) { le(&v, sizeof v); }
  void i32(std::int32_t v) { le(&v, sizeof v); }
  void i64(std::int64_t v) { le(&v, sizeof v); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// Doubles are stored by bit pattern: a save -> load -> save round trip
  /// is byte-identical (NaNs and signed zeros included).
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(static_cast<std::uint64_t>(s.size()));
    bytes(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void le(const void* data, std::size_t n) {
    unsigned char tmp[8];
    std::memcpy(tmp, data, n);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    for (std::size_t i = 0; i < n / 2; ++i) {
      const unsigned char t = tmp[i];
      tmp[i] = tmp[n - 1 - i];
      tmp[n - 1 - i] = t;
    }
#endif
    buf_.insert(buf_.end(), tmp, tmp + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte range.
///
/// Failure is sticky: once any read overruns (or a decoder calls fail()),
/// every later scalar read returns 0 / "" and ok() stays false. Decoders
/// therefore never need intermediate checks for memory safety — only
/// allocation-bearing reads (count()) must be checked eagerly so a corrupt
/// length cannot drive a huge resize before the overrun is noticed.
class BinReader {
 public:
  BinReader(const std::uint8_t* data, std::size_t size) : p_(data), size_(size) {}
  explicit BinReader(const std::vector<std::uint8_t>& buf)
      : BinReader(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    takeLe(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    takeLe(&v, sizeof v);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (failed_ || n > remaining()) {
      fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p_ + pos_), static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  bool read(void* dst, std::size_t n) { return take(dst, n); }

  /// Reads an element count for a sequence whose elements occupy at least
  /// \p minBytesPerElem bytes each. Fails (and returns 0) when the count
  /// could not possibly fit in the remaining input — the guard that keeps a
  /// corrupt length from triggering a multi-gigabyte allocation.
  std::uint64_t count(std::size_t minBytesPerElem) {
    const std::uint64_t n = u64();
    if (failed_) return 0;
    const std::size_t per = minBytesPerElem == 0 ? 1 : minBytesPerElem;
    if (n > remaining() / per) {
      fail();
      return 0;
    }
    return n;
  }

  /// Marks the stream failed (decoders call this on semantic violations).
  void fail() { failed_ = true; }

  bool ok() const { return !failed_; }
  bool atEnd() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool take(void* dst, std::size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      std::memset(dst, 0, n);
      return false;
    }
    std::memcpy(dst, p_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool takeLe(void* dst, std::size_t n) {
    if (!take(dst, n)) return false;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    auto* b = static_cast<unsigned char*>(dst);
    for (std::size_t i = 0; i < n / 2; ++i) {
      const unsigned char t = b[i];
      b[i] = b[n - 1 - i];
      b[n - 1 - i] = t;
    }
#endif
    return true;
  }

  const std::uint8_t* p_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace m3d::db
