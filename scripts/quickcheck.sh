#!/usr/bin/env bash
# Quick development loop: configure + build + fast test subset + the
# run-diff regression-gate self-consistency smoke.
#
# Runs everything EXCEPT the slow end-to-end flow suites (`ctest -LE slow`),
# which covers all unit/property tests including the design-database suites
# (`ctest -L db` selects just those), the telemetry suites (`ctest -L obs`),
# the flow-service protocol/queue suites (`ctest -L serve`), and the perf
# smokes (`ctest -L perf`: bench_route --smoke asserts the windowed search
# pops fewer nodes than full-grid at equal-or-better QoR; bench_serve
# --smoke asserts the serving cache-reuse contract).
# Use `ctest --test-dir build` with no label filter for the full tier-1 run.
#
# Usage: scripts/quickcheck.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -LE slow --output-on-failure "${CTEST_ARGS:---parallel $(nproc)}"

# Regression-gate self-consistency smoke: run bench_route --smoke twice and
# diff the two BENCH_route_smoke.json dumps with m3d_report. Routing is
# deterministic, so every metric except wall clock must match exactly; the
# loose wall threshold only guards against a rerun being wildly slower.
BUILD_ABS="$(cd "$BUILD_DIR" && pwd)"
SMOKE_DIR="$BUILD_ABS/quickcheck_smoke"
mkdir -p "$SMOKE_DIR"
(cd "$SMOKE_DIR" && "$BUILD_ABS/bench/bench_route" --smoke > /dev/null \
  && mv BENCH_route_smoke.json base.json)
(cd "$SMOKE_DIR" && "$BUILD_ABS/bench/bench_route" --smoke > /dev/null \
  && mv BENCH_route_smoke.json cur.json)
"$BUILD_ABS/src/report/m3d_report" diff "$SMOKE_DIR/base.json" "$SMOKE_DIR/cur.json" \
  --wall-threshold 75
echo "quickcheck: regression gate self-consistency OK"

# Checked-in baseline gate: the smoke scalars (kernel pops, partitioned
# region census + 1v2-thread bit-identity, ECO reuse counts) are pure
# functions of the algorithm, so they must match bench/baselines/ exactly
# on any machine. Only wall clock varies across hosts; the huge threshold
# effectively exempts it while still catching a hung run.
"$BUILD_ABS/src/report/m3d_report" diff bench/baselines/BENCH_route_smoke.json \
  "$SMOKE_DIR/cur.json" --wall-threshold 10000
echo "quickcheck: route smoke matches checked-in baseline"

# Flow-service daemon smoke: boot a real m3d_serve, run a cold then a warm
# job through m3d_client, and shut the daemon down with SIGTERM -- the
# graceful path must drain, exit 0, and flush the aggregate run report.
SERVE_DIR="$BUILD_ABS/quickcheck_serve"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
SOCK="$SERVE_DIR/serve.sock"
# The daemon's stdio goes to a log file: if it inherited this script's
# stdout and an assertion below bailed out before the kill, the leaked
# daemon would hold any pipe we are writing into open forever.
"$BUILD_ABS/src/serve/m3d_serve" --socket "$SOCK" --cache "$SERVE_DIR/cache" \
  --executors 2 --report "$SERVE_DIR/report.json" \
  > "$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  "$BUILD_ABS/src/serve/m3d_client" --socket "$SOCK" ping >/dev/null 2>&1 && break
  sleep 0.1
done
JOB="--tile tiny --rounds 2 --passes 6 --threads 1"
# shellcheck disable=SC2086  # JOB is a flag list, word splitting is wanted
COLD_JSON="$("$BUILD_ABS/src/serve/m3d_client" --socket "$SOCK" run $JOB --label cold)"
# shellcheck disable=SC2086
WARM_JSON="$("$BUILD_ABS/src/serve/m3d_client" --socket "$SOCK" run $JOB --label warm)"
echo "$WARM_JSON" | grep -q '"cache_prefix_stages":7' \
  || { echo "quickcheck: warm serve job did not replay the full prefix"; exit 1; }
COLD_HASH="$(echo "$COLD_JSON" | sed -n 's/.*"artifact_hash":"\([0-9a-f]*\)".*/\1/p')"
test -n "$COLD_HASH" \
  || { echo "quickcheck: could not extract cold artifact hash"; exit 1; }
echo "$WARM_JSON" | grep -q "\"artifact_hash\":\"$COLD_HASH\"" \
  || { echo "quickcheck: warm serve artifact differs from cold"; exit 1; }
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
test -s "$SERVE_DIR/report.json" \
  || { echo "quickcheck: m3d_serve did not flush its run report on SIGTERM"; exit 1; }
echo "quickcheck: serve daemon smoke OK (cold+warm bit-identical, report flushed)"

# Serve bench baseline gate: every scalar except wall clock and the
# wall-derived jobs/s rate is a pure function of the deterministic flows.
(cd "$SERVE_DIR" && "$BUILD_ABS/bench/bench_serve" --smoke > /dev/null)
"$BUILD_ABS/src/report/m3d_report" diff bench/baselines/BENCH_serve_smoke.json \
  "$SERVE_DIR/BENCH_serve_smoke.json" --wall-threshold 10000 \
  --metric scalars.jobs_per_s=100000
echo "quickcheck: serve smoke matches checked-in baseline"

# Placement-engine ablation gate: bench_hpwl_ablation --smoke runs the tiny
# tile through the full flow with both engines and asserts the analytic
# placer wins HPWL and post-route overflow within the wall budget. Both
# engines are deterministic, so every QoR scalar must match the checked-in
# baseline exactly; only wall clock is host-dependent.
(cd "$SMOKE_DIR" && "$BUILD_ABS/bench/bench_hpwl_ablation" --smoke > /dev/null)
"$BUILD_ABS/src/report/m3d_report" diff bench/baselines/BENCH_hpwl_ablation_smoke.json \
  "$SMOKE_DIR/BENCH_hpwl_ablation_smoke.json" --wall-threshold 10000
echo "quickcheck: hpwl-ablation smoke matches checked-in baseline"

# Incremental-STA gate: bench_sta --smoke A/Bs the persistent engine
# against from-scratch rebuilds (per-edit WNS, exact-vs-bisect min-period,
# opt-stage hash identity). All scalars except wall clock and the
# wall-derived speedup ratios are pure functions of the deterministic
# engine, so they must match the checked-in baseline exactly.
(cd "$SMOKE_DIR" && "$BUILD_ABS/bench/bench_sta" --smoke > /dev/null)
"$BUILD_ABS/src/report/m3d_report" diff bench/baselines/BENCH_sta_smoke.json \
  "$SMOKE_DIR/BENCH_sta_smoke.json" --wall-threshold 10000 \
  --metric scalars.edit_speedup=100000 --metric scalars.minp_speedup=100000 \
  --metric scalars.opt_speedup=100000
echo "quickcheck: sta smoke matches checked-in baseline"
