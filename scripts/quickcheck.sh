#!/usr/bin/env bash
# Quick development loop: configure + build + fast test subset.
#
# Runs everything EXCEPT the slow end-to-end flow suites (`ctest -LE slow`),
# which covers all unit/property tests including the design-database suites
# (`ctest -L db` selects just those) and the router-kernel perf smoke
# (`ctest -L perf` selects just that: bench_route --smoke asserts the
# windowed search pops fewer nodes than full-grid at equal-or-better QoR).
# Use `ctest --test-dir build` with no label filter for the full tier-1 run.
#
# Usage: scripts/quickcheck.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -LE slow --output-on-failure "${CTEST_ARGS:---parallel $(nproc)}"
