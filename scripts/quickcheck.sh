#!/usr/bin/env bash
# Quick development loop: configure + build + fast test subset + the
# run-diff regression-gate self-consistency smoke.
#
# Runs everything EXCEPT the slow end-to-end flow suites (`ctest -LE slow`),
# which covers all unit/property tests including the design-database suites
# (`ctest -L db` selects just those), the telemetry suites (`ctest -L obs`),
# and the router-kernel perf smoke (`ctest -L perf` selects just that:
# bench_route --smoke asserts the windowed search pops fewer nodes than
# full-grid at equal-or-better QoR).
# Use `ctest --test-dir build` with no label filter for the full tier-1 run.
#
# Usage: scripts/quickcheck.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -LE slow --output-on-failure "${CTEST_ARGS:---parallel $(nproc)}"

# Regression-gate self-consistency smoke: run bench_route --smoke twice and
# diff the two BENCH_route_smoke.json dumps with m3d_report. Routing is
# deterministic, so every metric except wall clock must match exactly; the
# loose wall threshold only guards against a rerun being wildly slower.
BUILD_ABS="$(cd "$BUILD_DIR" && pwd)"
SMOKE_DIR="$BUILD_ABS/quickcheck_smoke"
mkdir -p "$SMOKE_DIR"
(cd "$SMOKE_DIR" && "$BUILD_ABS/bench/bench_route" --smoke > /dev/null \
  && mv BENCH_route_smoke.json base.json)
(cd "$SMOKE_DIR" && "$BUILD_ABS/bench/bench_route" --smoke > /dev/null \
  && mv BENCH_route_smoke.json cur.json)
"$BUILD_ABS/src/report/m3d_report" diff "$SMOKE_DIR/base.json" "$SMOKE_DIR/cur.json" \
  --wall-threshold 75
echo "quickcheck: regression gate self-consistency OK"

# Checked-in baseline gate: the smoke scalars (kernel pops, partitioned
# region census + 1v2-thread bit-identity, ECO reuse counts) are pure
# functions of the algorithm, so they must match bench/baselines/ exactly
# on any machine. Only wall clock varies across hosts; the huge threshold
# effectively exempts it while still catching a hung run.
"$BUILD_ABS/src/report/m3d_report" diff bench/baselines/BENCH_route_smoke.json \
  "$SMOKE_DIR/cur.json" --wall-threshold 10000
echo "quickcheck: route smoke matches checked-in baseline"
