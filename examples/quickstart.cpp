/// \file quickstart.cpp
/// Minimal end-to-end tour of the library: generate the small-cache
/// OpenPiton tile, run the 2D baseline and the Macro-3D flow, and print the
/// head-to-head comparison. All artifacts land in examples_out/ (gitignored,
/// regenerated on demand). ~1 minute of runtime.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"
#include "io/fsutil.hpp"
#include "io/lefdef.hpp"
#include "report/run_report_table.hpp"
#include "report/table.hpp"

int main() {
  using namespace m3d;

  // Per-stage progress on stderr while the flows run (M3D_LOG_LEVEL
  // overrides; try =debug for per-iteration detail).
  obs::configureLogging(obs::LogLevel::kInfo);

  const std::string outDir = "examples_out";
  io::ensureDirectories(outDir);

  TileConfig cfg = makeSmallCacheTileConfig();

  std::cout << "Running 2D baseline flow...\n";
  const FlowOutput d2 = runFlow2D(cfg);
  std::cout << d2.trace << "\n";

  std::cout << "Running Macro-3D flow...\n";
  FlowOptions m3opt;
  m3opt.report.jsonPath = outDir + "/quickstart_macro3d_report.json";
  // Checkpoint every pipeline stage into the design database so the warm
  // re-run below restores instead of recomputing (delete the directory to
  // force a cold run).
  m3opt.checkpointDir = outDir + "/checkpoints";
  const auto coldT0 = std::chrono::steady_clock::now();
  const FlowOutput m3 = runFlowMacro3D(cfg, m3opt);
  const double coldMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - coldT0)
                            .count();
  std::cout << m3.trace << "\n";

  // Warm re-run: identical inputs, so every stage restores from the cache.
  std::cout << "Re-running Macro-3D flow from the stage cache...\n";
  m3opt.report.jsonPath.clear();
  const auto warmT0 = std::chrono::steady_clock::now();
  const FlowOutput m3warm = runFlowMacro3D(cfg, m3opt);
  const double warmMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - warmT0)
                            .count();
  std::printf("cold run: %.0f ms, warm (--resume) run: %.0f ms, identical fclk: %s\n\n",
              coldMs, warmMs,
              m3warm.metrics.fclkMhz == m3.metrics.fclkMhz ? "yes" : "NO");

  // Independent physical-verification verdicts (src/verify/).
  std::cout << "2D signoff:       " << d2.verify.verdictLine() << "\n";
  std::cout << "Macro-3D signoff: " << m3.verify.verdictLine() << "\n\n";

  // Where the wall-clock went (from the run report's span tree).
  std::cout << runReportSpanTable(m3.report, /*maxDepth=*/1).str() << "\n";

  Table t("Quickstart: 2D vs Macro-3D (small-cache tile)");
  t.setHeader({"metric", "2D", "Macro-3D"});
  t.addRow({"fclk [MHz]", Table::num(d2.metrics.fclkMhz, 0),
            Table::withDelta(m3.metrics.fclkMhz, d2.metrics.fclkMhz, 0)});
  t.addRow({"Emean [fJ/cycle]", Table::num(d2.metrics.emeanFj, 1),
            Table::withDelta(m3.metrics.emeanFj, d2.metrics.emeanFj, 1)});
  t.addRow({"Afootprint [mm^2]", Table::num(d2.metrics.footprintMm2, 2),
            Table::withDelta(m3.metrics.footprintMm2, d2.metrics.footprintMm2, 2)});
  t.addRow({"Total wirelength [m]", Table::num(d2.metrics.totalWirelengthM, 2),
            Table::withDelta(m3.metrics.totalWirelengthM, d2.metrics.totalWirelengthM, 2)});
  t.addRow({"F2F bumps", std::to_string(d2.metrics.f2fBumps),
            std::to_string(m3.metrics.f2fBumps)});
  t.addRow({"F2F bumps (signoff recount)", std::to_string(d2.metrics.f2fBumpCount),
            std::to_string(m3.metrics.f2fBumpCount)});
  t.addRow({"Signoff verdict", d2.verify.verdictLine(), m3.verify.verdictLine()});
  t.addRow({"Crit.-path WL [mm]", Table::num(d2.metrics.critPathWirelengthMm, 2),
            Table::withDelta(m3.metrics.critPathWirelengthMm,
                             d2.metrics.critPathWirelengthMm, 2)});
  t.addRow({"Clock-tree depth", std::to_string(d2.metrics.clockTreeDepth),
            std::to_string(m3.metrics.clockTreeDepth)});
  std::cout << t.str() << std::endl;

  // Export the Macro-3D implementation as m3d-LEF/DEF interchange files.
  writeLefFile(outDir + "/macro3d_small.lef", m3.logicTech, *m3.lib);
  writeDefFile(outDir + "/macro3d_small.def", "tile_small", m3.tile->netlist, m3.fp);
  std::cout << "wrote " << outDir << "/macro3d_small.lef / macro3d_small.def" << std::endl;
  return 0;
}
