/// \file sensor_on_logic.cpp
/// Sensor-on-logic heterogeneous integration (paper Secs. I-II): the macro
/// die carries full-custom sensor/analog blocks built in a *different*
/// (coarser) technology with a shallow BEOL, while the logic die keeps the
/// aggressively scaled node. This example builds a custom SoC netlist with
/// the low-level API — no OpenPiton generator — and drives the Macro-3D
/// machinery directly: per-die floorplans, projection, combined BEOL,
/// single-pass P&R, and die separation.

#include <iostream>

#include "core/macro3d.hpp"
#include "flows/case_study.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "tech/combined_beol.hpp"

using namespace m3d;

/// A full-custom sensor pixel-array macro: coarse node, 3-layer internal
/// routing, digital readout interface on its top metal (M3).
CellType makeSensorMacro(const std::string& name, int channels, const TechNode& logicTech) {
  CellType c;
  c.name = name;
  c.cls = CellClass::kMacro;
  c.width = snapUp(umToDbu(20.0 + 2.0 * channels), logicTech.siteWidth);
  c.height = snapUp(umToDbu(24.0), logicTech.rowHeight);
  c.substrateWidth = c.width;
  c.substrateHeight = c.height;

  LibPin clk{.name = "CLK", .dir = PinDir::kInput, .cap = 2.0e-15, .isClock = true,
             .layer = "M3", .offset = Point{umToDbu(1.0), umToDbu(1.0)}};
  c.pins.push_back(clk);
  for (int i = 0; i < channels; ++i) {
    LibPin q{.name = "OUT" + std::to_string(i), .dir = PinDir::kOutput, .cap = 0.0,
             .isClock = false, .layer = "M3",
             .offset = Point{umToDbu(3.0 + 2.0 * i), umToDbu(1.0)}};
    const int qIdx = static_cast<int>(c.pins.size());
    c.pins.push_back(q);
    TimingArc a;
    a.fromPin = 0;
    a.toPin = qIdx;
    a.intrinsic = 350e-12;  // slow analog front-end sampling path
    a.driveRes = 1500.0;
    c.arcs.push_back(a);
  }
  LibPin en{.name = "EN", .dir = PinDir::kInput, .cap = 2.0e-15, .isClock = false,
            .layer = "M3", .offset = Point{umToDbu(2.0), umToDbu(2.0)}};
  c.pins.push_back(en);
  c.setup = 120e-12;
  c.leakage = 2e-6;
  c.energyPerToggle = 30e-15;
  for (int m = 1; m <= 3; ++m) {
    c.obstructions.push_back({"M" + std::to_string(m), Rect{0, 0, c.width, c.height}});
  }
  return c;
}

int main() {
  // Logic die: 6-metal scaled node. Sensor die: 3-metal coarse node.
  const TechNode logicTech = makeCaseStudyTech(6);
  const TechNode sensorTech = makeCaseStudyTech(3);
  // The netlist keeps a pointer to the library: allocate it on the heap so
  // it can be handed to FlowOutput without moving the object itself.
  auto libPtr = std::make_unique<Library>(makeStdCellLib(logicTech));
  Library& lib = *libPtr;

  Tile soc(&lib);
  Netlist& nl = soc.netlist;

  const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, true);
  const NetId clk = nl.addNet("clk");
  nl.connectPort(clk, clkPort);
  soc.groups.clockNet = clk;

  // Four 8-channel sensor macros plus an enable net each.
  constexpr int kChannels = 8;
  std::vector<NetId> sensorOuts;
  std::vector<NetId> enables;
  for (int s = 0; s < 4; ++s) {
    const CellTypeId master =
        lib.addCell(makeSensorMacro("SENSOR8_" + std::to_string(s), kChannels, logicTech));
    const InstId inst = nl.addInstance("sensor" + std::to_string(s), master);
    soc.groups.macros.push_back(inst);
    nl.connect(clk, inst, "CLK");
    const NetId en = nl.addNet("en" + std::to_string(s));
    nl.connect(en, inst, "EN");
    enables.push_back(en);
    for (int i = 0; i < kChannels; ++i) {
      const NetId q = nl.addNet("s" + std::to_string(s) + "_out" + std::to_string(i));
      nl.connect(q, inst, "OUT" + std::to_string(i));
      sensorOuts.push_back(q);
    }
  }

  // DSP cloud consuming the sensor channels, driving enables and a result bus.
  std::vector<NetId> results;
  for (int i = 0; i < 16; ++i) {
    const NetId r = nl.addNet("result" + std::to_string(i));
    const PortId p = nl.addPort("result[" + std::to_string(i) + "]", PinDir::kOutput, Side::kEast);
    nl.connectPort(r, p);
    results.push_back(r);
  }
  Rng rng(2026);
  CloudSpec dsp;
  dsp.prefix = "dsp";
  dsp.numGates = 2500;
  dsp.numRegs = 500;
  dsp.levels = 8;
  dsp.clockNet = clk;
  dsp.consumeNets = sensorOuts;
  dsp.driveNets = results;
  for (NetId e : enables) dsp.driveNets.push_back(e);
  const CloudResult cloud = buildLogicCloud(nl, rng, dsp);
  soc.groups.modules.push_back({"dsp", cloud.gates});

  if (const std::string err = nl.validate(); !err.empty()) {
    std::cerr << "netlist invalid: " << err << "\n";
    return 1;
  }

  // --- Macro-3D by hand: floorplan, projection, combined stack, P&R --------
  const NetlistStats stats = computeStats(nl);
  const Rect die = computeDie3D(computeDie2D(stats, logicTech), logicTech);
  if (!placeMacrosShelf(nl, soc.groups.macros, die, umToDbu(1.0), DieId::kMacro)) {
    std::cerr << "sensor-die packing failed\n";
    return 1;
  }

  FlowOutput out;
  out.logicTech = logicTech;
  out.macroTech = sensorTech;
  out.lib = std::move(libPtr);
  out.tile = std::make_unique<Tile>(std::move(soc));
  Netlist& nl2 = out.tile->netlist;

  projectMacroDieMacros(nl2, *out.lib, logicTech);
  out.routingBeol = buildCombinedBeol(logicTech.beol, sensorTech.beol, F2fViaSpec{});
  std::cout << "combined stack: " << out.routingBeol.orderString() << "\n\n";

  out.fp.die = die;
  out.fp.rowHeight = logicTech.rowHeight;
  out.fp.siteWidth = logicTech.siteWidth;
  out.fp.blockages = macroPlacementBlockages(nl2, DieId::kMacro, 0);
  assignPorts(nl2, die);

  FlowOptions opt;
  opt.maxFreqRounds = 2;
  std::ostringstream trace;
  runPnrPipeline(out, opt, PipelineFlags{}, trace);
  std::cout << trace.str() << "\n";

  const SeparatedDesign sep = separateDies(out, MacroDieStackOrder::kFlipped);

  Table t("Sensor-on-logic SoC (Macro-3D, heterogeneous 6+3 metal stack)");
  t.setHeader({"metric", "value"});
  t.addRow({"fclk [MHz]", Table::num(out.metrics.fclkMhz, 0)});
  t.addRow({"Emean [fJ/cycle]", Table::num(out.metrics.emeanFj, 1)});
  t.addRow({"F2F bumps", std::to_string(out.metrics.f2fBumps)});
  t.addRow({"sensor-die BEOL", sep.macroDieBeol.orderString()});
  t.addRow({"sensor-die wirelength [um]", Table::num(sep.macroDieWirelengthUm, 0)});
  t.addRow({"unrouted nets", std::to_string(out.metrics.unroutedNets)});
  t.addRow({"signoff", out.verify.verdictLine()});
  std::cout << t.str() << std::endl;

  writeSvgFile("sensor_on_logic_sensor_die.svg",
               renderDieSvg(nl2, out.fp.die, DieId::kMacro, out.grid.get(), &out.routes));
  std::cout << "sensor-die layout written to sensor_on_logic_sensor_die.svg" << std::endl;
  return 0;
}
