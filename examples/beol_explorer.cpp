/// \file beol_explorer.cpp
/// BEOL design-space exploration: sweeps the macro-die metal count from 2 to
/// 6 layers on the small-cache tile and reports the performance / metal-
/// area / bump-count trade-off — the generalization of the paper's Table III
/// experiment, and the "exploiting heterogeneity further" direction its
/// conclusion leaves as future work.

#include <iostream>

#include "core/macro3d.hpp"
#include "report/table.hpp"

int main() {
  using namespace m3d;

  // Per-stage progress on stderr while the sweep runs (M3D_LOG_LEVEL wins).
  obs::configureLogging(obs::LogLevel::kInfo);

  TileConfig cfg = makeSmallCacheTileConfig();

  Table t("Macro-die BEOL depth sweep (small-cache tile)");
  t.setHeader({"macro-die metals", "fclk [MHz]", "Emean [fJ]", "Ametal [mm^2]", "F2F bumps",
               "macro-die WL [m]", "unrouted"});

  double baseFclk = 0.0;
  for (int metals = 6; metals >= 2; --metals) {
    // SRAM pins sit on M4; a 2- or 3-layer macro die cannot carry them, so
    // cap the macro generator's top metal accordingly via the config.
    if (metals < 4) {
      std::cout << "(macro-die M" << metals
                << ": SRAM pins live on M4 -> stack infeasible for this macro library; "
                   "stopping sweep)\n";
      break;
    }
    FlowOptions opt;
    opt.macroDieMetals = metals;
    opt.maxFreqRounds = 2;
    const FlowOutput out = runFlowMacro3D(cfg, opt);
    if (baseFclk == 0.0) baseFclk = out.metrics.fclkMhz;
    t.addRow({"M6-M" + std::to_string(metals),
              Table::withDelta(out.metrics.fclkMhz, baseFclk, 0),
              Table::num(out.metrics.emeanFj, 0), Table::num(out.metrics.metalAreaMm2, 2),
              std::to_string(out.metrics.f2fBumps),
              Table::num(out.metrics.wirelengthMacroDieM, 3),
              std::to_string(out.metrics.unroutedNets)});
    std::cout << "[M6-M" << metals << "] done\n";
  }
  std::cout << "\n" << t.str();
  std::cout << "\nEach dropped macro-die layer saves footprint x layer of metal "
               "area;\nthe M4 floor comes from the SRAM pin layer (paper Sec. V-A-1: "
               "internal\nrouting occupies M1..M4)."
            << std::endl;
  return 0;
}
