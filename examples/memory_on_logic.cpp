/// \file memory_on_logic.cpp
/// Domain scenario: implement the same multi-core tile in both cache
/// configurations with the Macro-3D flow, sweep the macro-die metal count,
/// and export the final layouts — the workflow a memory-on-logic SoC team
/// would run to pick a stack configuration.

#include <iostream>

#include "core/macro3d.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"

int main() {
  using namespace m3d;

  Table t("Memory-on-logic configuration sweep");
  t.setHeader({"config", "fclk [MHz]", "Emean [fJ]", "Ametal [mm^2]", "F2F bumps",
               "footprint [mm^2]", "signoff"});

  for (const bool large : {false, true}) {
    TileConfig cfg = large ? makeLargeCacheTileConfig() : makeSmallCacheTileConfig();
    // Keep the example fast: shrink the large configuration a little.
    if (large) {
      cfg.cache.l3Kb = 512;
      cfg.name = "large-512k";
    }
    for (const int metals : {6, 4}) {
      FlowOptions opt;
      opt.macroDieMetals = metals;
      opt.maxFreqRounds = 2;
      const FlowOutput out = runFlowMacro3D(cfg, opt);
      const std::string label =
          cfg.name + (metals == 6 ? " M6-M6" : " M6-M4");
      t.addRow({label, Table::num(out.metrics.fclkMhz, 0), Table::num(out.metrics.emeanFj, 0),
                Table::num(out.metrics.metalAreaMm2, 2), std::to_string(out.metrics.f2fBumps),
                Table::num(out.metrics.footprintMm2, 2),
                out.verify.clean() ? "CLEAN" : "FAIL"});
      std::cout << "[" << label << "] done, unrouted=" << out.metrics.unroutedNets
                << ", signoff " << out.verify.verdictLine() << "\n";

      if (metals == 4) {
        SvgOptions svg;
        svg.verify = &out.verify;  // overlay any signoff findings.
        writeSvgFile("mol_" + cfg.name + "_macro_die.svg",
                     renderDieSvg(out.tile->netlist, out.fp.die, DieId::kMacro, out.grid.get(),
                                  &out.routes, svg));
        writeSvgFile("mol_" + cfg.name + "_logic_die.svg",
                     renderDieSvg(out.tile->netlist, out.fp.die, DieId::kLogic, out.grid.get(),
                                  &out.routes, svg));
      }
    }
  }
  std::cout << "\n" << t.str();
  std::cout << "\nLayout SVGs written to ./mol_*.svg\n"
            << "Takeaway (paper Table III): dropping the macro die to four metal\n"
               "layers saves ~17% metal area at nearly unchanged performance.\n"
               "(The paper additionally measures ~20% fewer F2F bumps; in this\n"
               "reproduction bump count rises slightly instead -- see\n"
               "EXPERIMENTS.md deviation 3.)"
            << std::endl;
  return 0;
}
