#include <gtest/gtest.h>

#include "extract/extraction.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

/// Builds a simple pipeline: in -> DFF1 -> k INVs -> DFF2 -> out.
class StaFixture : public ::testing::Test {
 protected:
  StaFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  void buildPipeline(int invChain) {
    const NetId clk = nl_.addNet("clk");
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    nl_.connectPort(clk, clkPort);

    const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
    const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);

    dff1_ = nl_.addInstance("dff1", lib_.findCell("DFF_X1"));
    dff2_ = nl_.addInstance("dff2", lib_.findCell("DFF_X1"));
    nl_.connect(clk, dff1_, "CK");
    nl_.connect(clk, dff2_, "CK");

    const NetId nIn = nl_.addNet("n_in");
    nl_.connectPort(nIn, in);
    nl_.connect(nIn, dff1_, "D");

    NetId cur = nl_.addNet("q1");
    nl_.connect(cur, dff1_, "Q");
    for (int i = 0; i < invChain; ++i) {
      const InstId inv = nl_.addInstance("i" + std::to_string(i), lib_.findCell("INV_X1"));
      invs_.push_back(inv);
      nl_.connect(cur, inv, "A");
      cur = nl_.addNet("n" + std::to_string(i));
      nl_.connect(cur, inv, "Y");
    }
    nl_.connect(cur, dff2_, "D");

    const NetId nOut = nl_.addNet("n_out");
    nl_.connect(nOut, dff2_, "Q");
    nl_.connectPort(nOut, out);

    ASSERT_TRUE(nl_.validate().empty()) << nl_.validate();
    // Zero-wire parasitics: pin caps only.
    EstimationOptions opt;
    opt.rPerUm = 0.0;
    opt.cPerUm = 0.0;
    paras_ = estimateDesign(nl_, opt);
  }

  /// Analytic reg->reg path delay with zero wire parasitics.
  double analyticRegToReg() const {
    const CellType& dff = lib_.cell(lib_.findCell("DFF_X1"));
    const CellType& inv = lib_.cell(lib_.findCell("INV_X1"));
    const double invCap = inv.pins[0].cap;
    const double dCap = dff.pins[0].cap;
    double d = dff.arcs[0].intrinsic + dff.arcs[0].driveRes * invCap;  // CK->Q + load
    const std::size_t n = invs_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double load = (i + 1 < n) ? invCap : dCap;
      d += inv.arcs[0].intrinsic + inv.arcs[0].driveRes * load;
    }
    return d;
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  InstId dff1_ = kInvalidId;
  InstId dff2_ = kInvalidId;
  std::vector<InstId> invs_;
  std::vector<NetParasitics> paras_;
};

TEST_F(StaFixture, RegToRegSlackMatchesAnalytic) {
  buildPipeline(4);
  Sta sta(nl_, paras_);
  const double d = analyticRegToReg();
  const double setup = lib_.cell(lib_.findCell("DFF_X1")).setup;

  const double period = 1e-9;
  const TimingReport rep = sta.analyze(period);
  EXPECT_NEAR(rep.wns, period - setup - d, 1e-14);
  EXPECT_EQ(rep.failingEndpoints, 0);
}

TEST_F(StaFixture, MinPeriodMatchesAnalytic) {
  buildPipeline(6);
  Sta sta(nl_, paras_);
  const double d = analyticRegToReg();
  const double setup = lib_.cell(lib_.findCell("DFF_X1")).setup;
  const double minT = sta.findMinPeriod();
  EXPECT_NEAR(minT, d + setup, 2e-12);
  EXPECT_NEAR(sta.maxFrequency(), 1.0 / (d + setup), 1e7);
}

TEST_F(StaFixture, CriticalPathTracesThroughChain) {
  buildPipeline(5);
  Sta sta(nl_, paras_);
  const TimingReport rep = sta.analyze(100e-12);  // tight: path fails
  EXPECT_LT(rep.wns, 0.0);
  EXPECT_GT(rep.failingEndpoints, 0);
  EXPECT_LT(rep.tns, 0.0);
  // Path: Q of dff1, 2 pins per inverter, D of dff2.
  ASSERT_GE(rep.criticalPath.size(), 2u);
  EXPECT_EQ(rep.criticalPath.size(), 2u + 2u * invs_.size());
  EXPECT_EQ(rep.critEndpointName, "dff2/D");
  // Arrivals increase monotonically along the path.
  for (std::size_t i = 1; i < rep.criticalPath.size(); ++i) {
    EXPECT_GE(rep.criticalPath[i].arrival, rep.criticalPath[i - 1].arrival);
  }
}

TEST_F(StaFixture, ClockLatencyShiftsLaunchAndCapture) {
  buildPipeline(4);
  ClockModel clock;
  clock.latency.assign(static_cast<std::size_t>(nl_.numInstances()), 0.0);
  // Useful skew: capture clock arrives late -> more slack on the reg path.
  clock.latency[static_cast<std::size_t>(dff2_)] = 50e-12;
  Sta withSkew(nl_, paras_, &clock);
  Sta ideal(nl_, paras_);
  const double period = 1e-9;
  // Late capture clock relaxes the reg->reg path; the overall WNS improves,
  // bounded by the injected 50 ps (another endpoint may become critical).
  EXPECT_GT(withSkew.worstSlack(period), ideal.worstSlack(period) + 1e-12);
  EXPECT_LE(withSkew.worstSlack(period), ideal.worstSlack(period) + 50e-12 + 1e-13);
}

TEST_F(StaFixture, HalfCyclePortConstraint) {
  buildPipeline(2);
  // Mark the input port half-cycle: it launches at T/2.
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    if (nl_.port(p).name == "in") nl_.port(p).halfCycle = true;
  }
  Sta sta(nl_, paras_);
  // The in->dff1 path now needs T/2 >= setup (zero wire delay), which is
  // trivially met, but the launch offset must appear in arrivals: compare
  // slack at two periods; reg->reg path dominates and scales 1:1 with T,
  // while the port path scales 1:2.
  const double s1 = sta.worstSlack(1e-9);
  const double s2 = sta.worstSlack(2e-9);
  EXPECT_GT(s2, s1);
}

TEST_F(StaFixture, HalfCycleOutputPortDominatesWhenSlow) {
  buildPipeline(1);
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    if (nl_.port(p).name == "out") nl_.port(p).halfCycle = true;
  }
  Sta sta(nl_, paras_);
  // Find min period; the out endpoint requires CK->Q <= T/2.
  const double minT = sta.findMinPeriod();
  const CellType& dff = lib_.cell(lib_.findCell("DFF_X1"));
  const double ckq = dff.arcs[0].intrinsic + dff.arcs[0].driveRes * nl_.port(1).cap;
  // reg->out constraint: T >= 2 * ckq (port cap load).
  EXPECT_GE(minT, 2.0 * ckq - 1e-12);
}

TEST_F(StaFixture, WorstSlackMonotoneInPeriod) {
  buildPipeline(8);
  Sta sta(nl_, paras_);
  double prev = sta.worstSlack(100e-12);
  for (double t = 200e-12; t < 2e-9; t += 200e-12) {
    const double s = sta.worstSlack(t);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST_F(StaFixture, WireDelayExtendsArrival) {
  buildPipeline(3);
  Sta fast(nl_, paras_);
  // Inject wire delay on every net and compare.
  auto slowParas = paras_;
  for (auto& p : slowParas) {
    for (auto& d : p.sinkWireDelay) d += 20e-12;
  }
  Sta slow(nl_, slowParas);
  EXPECT_GT(fast.worstSlack(1e-9), slow.worstSlack(1e-9));
}

TEST_F(StaFixture, MacroSetupIsHonored) {
  // reg -> macro D pin: endpoint uses the macro's setup.
  const NetId clk = nl_.addNet("clk");
  const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
  nl_.connectPort(clk, clkPort);
  const InstId dff = nl_.addInstance("r", lib_.findCell("DFF_X1"));
  nl_.connect(clk, dff, "CK");
  const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
  const NetId nIn = nl_.addNet("ni");
  nl_.connectPort(nIn, in);
  nl_.connect(nIn, dff, "D");

  // A tiny macro-like cell: reuse the DFF as a stand-in is wrong; build an
  // SRAM via the library path used elsewhere is heavier than needed. Here we
  // verify via a second DFF with a larger setup patched in the lib copy.
  const CellTypeId dff2Id = lib_.findCell("DFF_X2");
  lib_.cell(dff2Id).setup = 200e-12;
  const InstId cap = nl_.addInstance("capture", dff2Id);
  nl_.connect(clk, cap, "CK");
  const NetId q = nl_.addNet("q");
  nl_.connect(q, dff, "Q");
  nl_.connect(q, cap, "D");
  const NetId qq = nl_.addNet("qq");
  const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);
  nl_.connect(qq, cap, "Q");
  nl_.connectPort(qq, out);

  EstimationOptions zero;
  zero.rPerUm = 0.0;
  zero.cPerUm = 0.0;
  const auto paras = estimateDesign(nl_, zero);
  Sta sta(nl_, paras);
  const double minT = sta.findMinPeriod();
  const CellType& d1 = lib_.cell(lib_.findCell("DFF_X1"));
  const double ckq = d1.arcs[0].intrinsic + d1.arcs[0].driveRes * lib_.cell(dff2Id).pins[0].cap;
  EXPECT_NEAR(minT, ckq + 200e-12, 2e-12);
}

}  // namespace
}  // namespace m3d
