#include <gtest/gtest.h>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"

namespace m3d {
namespace {

/// Lenient, fast paper-shape integration checks on a reduced tile. The full
/// quantitative reproduction lives in the bench binaries; these tests only
/// pin the orderings that must never silently regress.
TileConfig shapeCfg() {
  TileConfig cfg;
  cfg.name = "shape";
  cfg.cache = CacheConfig{4, 4, 8, 32};
  cfg.coreGates = 1200;
  cfg.coreRegs = 240;
  cfg.l1CtrlGates = 120;
  cfg.l1CtrlRegs = 24;
  cfg.l2CtrlGates = 160;
  cfg.l2CtrlRegs = 32;
  cfg.l3CtrlGates = 220;
  cfg.l3CtrlRegs = 44;
  cfg.nocGates = 140;
  cfg.nocRegs = 30;
  cfg.nocDataBits = 4;
  return cfg;
}

class PaperShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlowOptions opt;
    opt.maxFreqRounds = 2;
    d2_ = new FlowOutput(runFlow2D(shapeCfg(), opt));
    m3_ = new FlowOutput(runFlowMacro3D(shapeCfg(), opt));
  }
  static void TearDownTestSuite() {
    delete d2_;
    delete m3_;
    d2_ = nullptr;
    m3_ = nullptr;
  }
  static FlowOutput* d2_;
  static FlowOutput* m3_;
};

FlowOutput* PaperShape::d2_ = nullptr;
FlowOutput* PaperShape::m3_ = nullptr;

TEST_F(PaperShape, BothFlowsImplementCleanly) {
  for (const FlowOutput* out : {d2_, m3_}) {
    EXPECT_EQ(out->metrics.unroutedNets, 0) << out->trace;
    EXPECT_TRUE(out->tile->netlist.validate().empty());
  }
}

TEST_F(PaperShape, BothFlowsPassSignoff) {
  // The independent verifier (src/verify/) must agree the implementations
  // are clean -- this is the paper's "directly valid for the 3D IC" claim
  // checked by a tool that does not trust the flow's own bookkeeping.
  for (const FlowOutput* out : {d2_, m3_}) {
    EXPECT_TRUE(out->verify.clean()) << out->verify.summaryText();
    EXPECT_EQ(out->metrics.verifyViolations, 0);
    EXPECT_EQ(out->verify.recomputedOverflowedEdges, out->routes.overflowedEdges);
    EXPECT_EQ(out->verify.f2fBumpCount, out->routes.f2fBumps);
  }
  // On the combined stack, the verifier's per-net bump census must total
  // its own bump count (Table-IV bookkeeping is internally consistent).
  std::int64_t perNetTotal = 0;
  for (const std::int64_t b : m3_->verify.f2fBumpsPerNet) perNetTotal += b;
  EXPECT_EQ(perNetTotal, m3_->verify.f2fBumpCount);
  EXPECT_GT(m3_->verify.f2fBumpCount, 0);
}

TEST_F(PaperShape, FootprintHalves) {
  EXPECT_NEAR(m3_->metrics.footprintMm2 / d2_->metrics.footprintMm2, 0.5, 0.03);
}

TEST_F(PaperShape, Macro3DIsAtLeastCompetitive) {
  // Paper: +20.5% / +28.2%. On the reduced tile we only require that
  // Macro-3D is no slower than the 2D baseline (full-size magnitude checks
  // live in bench_table1/2).
  EXPECT_GE(m3_->metrics.fclkMhz, d2_->metrics.fclkMhz * 0.98)
      << "2D=" << d2_->metrics.fclkMhz << " M3D=" << m3_->metrics.fclkMhz;
}

TEST_F(PaperShape, WirelengthShrinksIn3D) {
  EXPECT_LT(m3_->metrics.totalWirelengthM, d2_->metrics.totalWirelengthM);
}

TEST_F(PaperShape, BumpsExistOnlyIn3D) {
  EXPECT_EQ(d2_->metrics.f2fBumps, 0);
  EXPECT_GT(m3_->metrics.f2fBumps, 0);
}

TEST_F(PaperShape, MacroDieCarriesOnlyMacros) {
  const Netlist& nl = m3_->tile->netlist;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    if (nl.instance(i).die == DieId::kMacro) {
      EXPECT_TRUE(nl.cellOf(i).isMacro()) << nl.instance(i).name;
    }
  }
}

}  // namespace
}  // namespace m3d
