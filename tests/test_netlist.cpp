#include <gtest/gtest.h>

#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  NetlistTest() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  InstId addInv(const std::string& name) { return nl_.addInstance(name, lib_.findCell("INV_X1")); }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
};

TEST_F(NetlistTest, BuildSmallCircuit) {
  // port_in -> INV a -> INV b -> port_out
  const PortId pin = nl_.addPort("in", PinDir::kInput, Side::kWest);
  const PortId pout = nl_.addPort("out", PinDir::kOutput, Side::kEast);
  const InstId a = addInv("a");
  const InstId b = addInv("b");
  const NetId n0 = nl_.addNet("n0");
  const NetId n1 = nl_.addNet("n1");
  const NetId n2 = nl_.addNet("n2");
  nl_.connectPort(n0, pin);
  nl_.connect(n0, a, "A");
  nl_.connect(n1, a, "Y");
  nl_.connect(n1, b, "A");
  nl_.connect(n2, b, "Y");
  nl_.connectPort(n2, pout);

  EXPECT_EQ(nl_.numInstances(), 2);
  EXPECT_EQ(nl_.numNets(), 3);
  EXPECT_EQ(nl_.numPorts(), 2);
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();

  // Driver bookkeeping.
  EXPECT_TRUE(nl_.isDriverPin(nl_.net(n0).pins[static_cast<std::size_t>(nl_.net(n0).driverIdx)]));
  EXPECT_EQ(nl_.net(n1).driverIdx, 0);  // a/Y connected first
}

TEST_F(NetlistTest, ValidateCatchesMissingDriver) {
  const InstId a = addInv("a");
  const InstId b = addInv("b");
  const NetId n = nl_.addNet("floating");
  nl_.connect(n, a, "A");
  nl_.connect(n, b, "A");
  EXPECT_NE(nl_.validate().find("no driver"), std::string::npos);
}

TEST_F(NetlistTest, ValidateCatchesMissingSink) {
  const InstId a = addInv("a");
  const NetId n = nl_.addNet("dangling");
  nl_.connect(n, a, "Y");
  EXPECT_NE(nl_.validate().find("no sink"), std::string::npos);
}

TEST_F(NetlistTest, DisconnectRewiresBackRefs) {
  const InstId a = addInv("a");
  const InstId b = addInv("b");
  const InstId c = addInv("c");
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  nl_.connect(n, c, "A");
  ASSERT_EQ(nl_.net(n).pins.size(), 3u);

  nl_.disconnect(n, NetPin::makeInstPin(b, *nl_.cellOf(b).findPin("A")));
  EXPECT_EQ(nl_.net(n).pins.size(), 2u);
  EXPECT_EQ(nl_.instance(b).pinNets[0], kInvalidId);
  // Driver index survives the deletion.
  EXPECT_TRUE(nl_.isDriverPin(nl_.net(n).pins[static_cast<std::size_t>(nl_.net(n).driverIdx)]));
  // Reconnect elsewhere.
  const NetId n2 = nl_.addNet("n2");
  nl_.connect(n2, b, "A");
  nl_.connect(n2, c, "Y");
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();
}

TEST_F(NetlistTest, ResizeKeepsConnectivity) {
  const InstId a = addInv("a");
  const InstId b = addInv("b");
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  nl_.resize(a, lib_.findCell("INV_X4"));
  EXPECT_EQ(nl_.cellOf(a).name, "INV_X4");
  EXPECT_EQ(nl_.instance(a).pinNets[1], n);  // Y still on the net
  EXPECT_TRUE(nl_.isDriverPin(nl_.net(n).pins[static_cast<std::size_t>(nl_.net(n).driverIdx)]));
}

TEST_F(NetlistTest, PinPositionsFollowInstance) {
  const InstId a = addInv("a");
  nl_.instance(a).pos = Point{1000, 2000};
  const int yPin = *nl_.cellOf(a).findPin("Y");
  const Point expect = Point{1000, 2000} + nl_.cellOf(a).pins[static_cast<std::size_t>(yPin)].offset;
  EXPECT_EQ(nl_.pinPosition(NetPin::makeInstPin(a, yPin)), expect);
}

TEST_F(NetlistTest, HpwlComputation) {
  const InstId a = addInv("a");
  const InstId b = addInv("b");
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  nl_.instance(a).pos = Point{0, 0};
  nl_.instance(b).pos = Point{10000, 5000};
  const Dbu h = nl_.netHpwl(n);
  // HPWL equals bbox half-perimeter of the two pin positions.
  const Point pa = nl_.pinPosition(NetPin::makeInstPin(a, *nl_.cellOf(a).findPin("Y")));
  const Point pb = nl_.pinPosition(NetPin::makeInstPin(b, *nl_.cellOf(b).findPin("A")));
  EXPECT_EQ(h, manhattanDistance(pa, pb));
  EXPECT_EQ(nl_.totalHpwl(), h);
}

TEST_F(NetlistTest, PortHelpers) {
  EXPECT_EQ(oppositeSide(Side::kNorth), Side::kSouth);
  EXPECT_EQ(oppositeSide(Side::kEast), Side::kWest);
  EXPECT_STREQ(sideName(Side::kNorth), "N");
  const PortId p = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
  EXPECT_TRUE(nl_.port(p).isClock);
  const NetId n = nl_.addNet("clk");
  nl_.connectPort(n, p);
  EXPECT_TRUE(nl_.net(n).isClock);
}

// ---------------------------------------------------------------------------
// Logic-cloud generator properties.

struct CloudParam {
  int gates;
  int regs;
  int levels;
  std::uint64_t seed;
};

class LogicCloudTest : public ::testing::TestWithParam<CloudParam> {};

TEST_P(LogicCloudTest, GeneratesValidRegisterBoundedLogic) {
  const CloudParam p = GetParam();
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);

  const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, true);
  const NetId clk = nl.addNet("clk");
  nl.connectPort(clk, clkPort);

  // External interface nets.
  std::vector<NetId> inputs;
  std::vector<NetId> outputs;
  for (int i = 0; i < 12; ++i) inputs.push_back(nl.addNet("in" + std::to_string(i)));
  for (int i = 0; i < 10; ++i) outputs.push_back(nl.addNet("out" + std::to_string(i)));

  Rng rng(p.seed);
  CloudSpec spec;
  spec.prefix = "t";
  spec.numGates = p.gates;
  spec.numRegs = p.regs;
  spec.levels = p.levels;
  spec.clockNet = clk;
  spec.consumeNets = inputs;
  spec.driveNets = outputs;
  const CloudResult r = buildLogicCloud(nl, rng, spec);

  // Drive the inputs externally so validation passes.
  for (NetId n : inputs) {
    const PortId port = nl.addPort("p_" + nl.net(n).name, PinDir::kInput, Side::kWest);
    nl.connectPort(n, port);
  }
  // Outputs need external sinks.
  for (NetId n : outputs) {
    const PortId port = nl.addPort("p_" + nl.net(n).name, PinDir::kOutput, Side::kEast);
    nl.connectPort(n, port);
  }

  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
  EXPECT_GE(static_cast<int>(r.registers.size()), p.regs);
  EXPECT_GE(static_cast<int>(r.gates.size()), p.gates);

  // Every output net is driven by a register (no cross-module comb cycles).
  for (NetId n : outputs) {
    const Net& net = nl.net(n);
    const NetPin& drv = net.pins[static_cast<std::size_t>(net.driverIdx)];
    ASSERT_EQ(drv.kind, NetPin::Kind::kInstPin);
    EXPECT_TRUE(nl.cellOf(drv.inst).isSequential()) << nl.net(n).name;
  }
  // Every input net got at least one sink inside the cloud.
  for (NetId n : inputs) {
    EXPECT_GE(nl.net(n).pins.size(), 2u) << nl.net(n).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LogicCloudTest,
                         ::testing::Values(CloudParam{50, 10, 3, 1}, CloudParam{200, 40, 6, 2},
                                           CloudParam{500, 100, 8, 3},
                                           CloudParam{1000, 150, 12, 4},
                                           CloudParam{80, 8, 2, 99},
                                           CloudParam{300, 60, 5, 12345}));

TEST(LogicCloud, DeterministicForFixedSeed) {
  const TechNode tech = makeTech28(6);
  auto build = [&]() {
    Library lib = makeStdCellLib(tech);
    Netlist nl(&lib);
    const NetId clk = nl.addNet("clk");
    const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, true);
    nl.connectPort(clk, clkPort);
    Rng rng(7);
    CloudSpec spec;
    spec.prefix = "d";
    spec.numGates = 300;
    spec.numRegs = 50;
    spec.clockNet = clk;
    buildLogicCloud(nl, rng, spec);
    // Fingerprint: instance count, net count, total pin count.
    std::int64_t pins = 0;
    for (NetId n = 0; n < nl.numNets(); ++n) pins += static_cast<std::int64_t>(nl.net(n).pins.size());
    return std::tuple{nl.numInstances(), nl.numNets(), pins};
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace m3d
