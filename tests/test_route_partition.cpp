#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/macro3d.hpp"
#include "lib/stdcell_factory.hpp"
#include "route/region_partition.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"
#include "tech/tech_node.hpp"

/// Property suite for the region partitioner behind the region-parallel
/// negotiation (RouterOptions::regionSizeGcells). The partition must be an
/// exact cover of the gcell plane and a pure function of (nx, ny, size) --
/// identical run-to-run and at any thread count -- and boundary-crossing
/// nets must be classified deterministically. Named RoutePartition* so it
/// joins the quick `route` development loop (not a slow suite).

namespace m3d {
namespace {

TEST(RoutePartitionProperties, EveryGcellInExactlyOneRegionRandomized) {
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const int nx = 1 + static_cast<int>(rng() % 97);
    const int ny = 1 + static_cast<int>(rng() % 97);
    const int size = 1 + static_cast<int>(rng() % 40);
    const RegionPartition part = RegionPartition::make(nx, ny, size);
    ASSERT_GE(part.numRegions(), 1);

    // Exact cover, checked two ways: regionOfGcell maps every gcell into
    // range, and the union of bounds() rectangles counts every gcell once.
    std::vector<int> covered(static_cast<std::size_t>(nx * ny), 0);
    for (int r = 0; r < part.numRegions(); ++r) {
      const RegionRect b = part.bounds(r);
      ASSERT_LE(0, b.x0);
      ASSERT_LE(b.x0, b.x1);
      ASSERT_LT(b.x1, nx);
      ASSERT_LE(0, b.y0);
      ASSERT_LE(b.y0, b.y1);
      ASSERT_LT(b.y1, ny);
      for (int y = b.y0; y <= b.y1; ++y) {
        for (int x = b.x0; x <= b.x1; ++x) {
          ++covered[static_cast<std::size_t>(y * nx + x)];
          ASSERT_EQ(part.regionOfGcell(x, y), r)
              << "gcell (" << x << "," << y << ") nx=" << nx << " ny=" << ny
              << " size=" << size;
        }
      }
    }
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        ASSERT_EQ(covered[static_cast<std::size_t>(y * nx + x)], 1)
            << "gcell (" << x << "," << y << ") covered " << covered[y * nx + x]
            << " times; nx=" << nx << " ny=" << ny << " size=" << size;
      }
    }
  }
}

TEST(RoutePartitionProperties, PureFunctionOfDimsAndSize) {
  // Rebuilding the partition must reproduce every derived quantity exactly:
  // it is a pure function of its inputs, never of run order or schedule.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const int nx = 1 + static_cast<int>(rng() % 301);
    const int ny = 1 + static_cast<int>(rng() % 301);
    const int size = 1 + static_cast<int>(rng() % 64);
    const RegionPartition a = RegionPartition::make(nx, ny, size);
    const RegionPartition b = RegionPartition::make(nx, ny, size);
    ASSERT_EQ(a.numRegions(), b.numRegions());
    ASSERT_EQ(a.numRegionsX(), b.numRegionsX());
    ASSERT_EQ(a.numRegionsY(), b.numRegionsY());
    for (int r = 0; r < a.numRegions(); ++r) {
      const RegionRect ra = a.bounds(r);
      const RegionRect rb = b.bounds(r);
      ASSERT_TRUE(ra.x0 == rb.x0 && ra.y0 == rb.y0 && ra.x1 == rb.x1 && ra.y1 == rb.y1);
    }
    for (int probe = 0; probe < 50; ++probe) {
      const int x = static_cast<int>(rng() % static_cast<std::uint64_t>(nx));
      const int y = static_cast<int>(rng() % static_cast<std::uint64_t>(ny));
      ASSERT_EQ(a.regionOfGcell(x, y), b.regionOfGcell(x, y));
    }
  }
}

TEST(RoutePartitionProperties, RemainderAbsorbedByLastRegion) {
  // 50 gcells at size 16 -> 3 columns (floor), the last spanning 32..49.
  const RegionPartition part = RegionPartition::make(50, 50, 16);
  EXPECT_EQ(part.numRegionsX(), 3);
  EXPECT_EQ(part.numRegionsY(), 3);
  const RegionRect last = part.bounds(part.numRegions() - 1);
  EXPECT_EQ(last.x0, 32);
  EXPECT_EQ(last.x1, 49);
  EXPECT_EQ(last.y0, 32);
  EXPECT_EQ(last.y1, 49);
  // A grid smaller than one region collapses to a single region.
  const RegionPartition tiny = RegionPartition::make(5, 7, 16);
  EXPECT_EQ(tiny.numRegions(), 1);
  const RegionRect b = tiny.bounds(0);
  EXPECT_TRUE(b.x0 == 0 && b.y0 == 0 && b.x1 == 4 && b.y1 == 6);
}

TEST(RoutePartitionProperties, BoxClassificationDeterministic) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const int nx = 8 + static_cast<int>(rng() % 120);
    const int ny = 8 + static_cast<int>(rng() % 120);
    const int size = 2 + static_cast<int>(rng() % 30);
    const RegionPartition part = RegionPartition::make(nx, ny, size);
    for (int probe = 0; probe < 30; ++probe) {
      int x0 = static_cast<int>(rng() % static_cast<std::uint64_t>(nx));
      int x1 = static_cast<int>(rng() % static_cast<std::uint64_t>(nx));
      int y0 = static_cast<int>(rng() % static_cast<std::uint64_t>(ny));
      int y1 = static_cast<int>(rng() % static_cast<std::uint64_t>(ny));
      if (x0 > x1) std::swap(x0, x1);
      if (y0 > y1) std::swap(y0, y1);
      const int r = part.regionOfBox(x0, y0, x1, y1);
      ASSERT_EQ(r, part.regionOfBox(x0, y0, x1, y1));  // repeatable
      if (r >= 0) {
        // Contained: every corner (hence every gcell of the box) maps to r.
        ASSERT_EQ(part.regionOfGcell(x0, y0), r);
        ASSERT_EQ(part.regionOfGcell(x1, y0), r);
        ASSERT_EQ(part.regionOfGcell(x0, y1), r);
        ASSERT_EQ(part.regionOfGcell(x1, y1), r);
      } else {
        ASSERT_NE(part.regionOfGcell(x0, y0), part.regionOfGcell(x1, y1));
      }
    }
  }
}

// A real routed problem: the partitioned router must classify and route
// boundary-crossing nets identically at 1 and 2 threads (the full 1/2/8
// matrix lives in test_determinism.cpp; this is the quick-loop guard).
TEST(RoutePartitionProperties, PartitionedRouteThreadCountInvariant) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  std::mt19937_64 rng(321);
  std::vector<InstId> insts;
  for (int i = 0; i < 60; ++i) {
    const InstId id = nl.addInstance("g" + std::to_string(i), lib.findCell("INV_X1"));
    nl.instance(id).pos = Point{umToDbu(2.0 + static_cast<double>(rng() % 95)),
                                umToDbu(2.0 + static_cast<double>(rng() % 95))};
    insts.push_back(id);
  }
  for (int i = 0; i + 1 < 60; i += 2) {
    const NetId n = nl.addNet("n" + std::to_string(i));
    nl.connect(n, insts[static_cast<std::size_t>(i)], "Y");
    nl.connect(n, insts[static_cast<std::size_t>(i + 1)], "A");
  }
  const Rect die{0, 0, umToDbu(100), umToDbu(100)};

  auto routeWith = [&](int threads) {
    RouteGrid grid(nl, die, tech.beol);
    RouterOptions ropt;
    ropt.numThreads = threads;
    ropt.regionSizeGcells = 8;
    return routeDesign(nl, grid, ropt);
  };
  const RoutingResult a = routeWith(1);
  const RoutingResult b = routeWith(2);
  EXPECT_GT(a.regionCount, 1);
  EXPECT_GT(a.regionLocalNets, 0);
  EXPECT_EQ(a.regionCount, b.regionCount);
  EXPECT_EQ(a.regionLocalNets, b.regionLocalNets);
  EXPECT_EQ(a.regionCrossNets, b.regionCrossNets);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    ASSERT_EQ(a.nets[n].segs.size(), b.nets[n].segs.size()) << "net " << n;
    for (std::size_t s = 0; s < a.nets[n].segs.size(); ++s) {
      const RouteSeg& x = a.nets[n].segs[s];
      const RouteSeg& y = b.nets[n].segs[s];
      ASSERT_TRUE(x.isVia == y.isVia && x.layer == y.layer && x.fromNode == y.fromNode &&
                  x.toNode == y.toNode)
          << "net " << n << " seg " << s;
    }
  }
  EXPECT_EQ(a.nodesPopped, b.nodesPopped);
  EXPECT_EQ(a.totalOverflow, b.totalOverflow);
}

}  // namespace
}  // namespace m3d
