#include <gtest/gtest.h>

#include "extract/extraction.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/netlist.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"
#include "tech/combined_beol.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class ExtractFixture : public ::testing::Test {
 protected:
  ExtractFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  InstId addInvAt(const std::string& name, double xUm, double yUm) {
    const InstId i = nl_.addInstance(name, lib_.findCell("INV_X1"));
    nl_.instance(i).pos = Point{umToDbu(xUm), umToDbu(yUm)};
    return i;
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Rect die_{0, 0, umToDbu(100), umToDbu(100)};
};

TEST_F(ExtractFixture, LumpedNetWhenPinsShareGcell) {
  const InstId a = addInvAt("a", 10, 10);
  const InstId b = addInvAt("b", 11, 10);
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult routes = routeDesign(nl_, grid);
  const NetParasitics p = extractRouted(nl_, n, grid, routes.nets[static_cast<std::size_t>(n)]);
  EXPECT_DOUBLE_EQ(p.wireCap, 0.0);
  EXPECT_GT(p.pinCap, 0.0);  // the INV input cap
  EXPECT_DOUBLE_EQ(p.sinkWireDelay[1], 0.0);
}

TEST_F(ExtractFixture, WireCapScalesWithLength) {
  const InstId a = addInvAt("a", 2, 50);
  const InstId b = addInvAt("b", 30, 50);
  const InstId c = addInvAt("c", 98, 90);
  const NetId n1 = nl_.addNet("short");
  nl_.connect(n1, a, "Y");
  nl_.connect(n1, b, "A");
  const NetId n2 = nl_.addNet("long");
  nl_.connect(n2, b, "Y");
  nl_.connect(n2, c, "A");
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult routes = routeDesign(nl_, grid);
  const auto paras = extractDesign(nl_, grid, routes);
  EXPECT_GT(paras[static_cast<std::size_t>(n2)].wireCap,
            0.5 * paras[static_cast<std::size_t>(n1)].wireCap);
  EXPECT_GT(paras[static_cast<std::size_t>(n2)].sinkWireDelay[1], 0.0);
  EXPECT_GT(paras[static_cast<std::size_t>(n2)].sinkWireLengthUm[1],
            paras[static_cast<std::size_t>(n1)].sinkWireLengthUm[1]);
}

TEST_F(ExtractFixture, ElmoreMatchesAnalyticSingleWire) {
  // Straight horizontal route on one layer: Elmore = sum r_i * Cdown.
  const InstId a = addInvAt("a", 2, 50);
  const InstId b = addInvAt("b", 62, 50);
  const NetId n = nl_.addNet("w");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult routes = routeDesign(nl_, grid);
  const NetParasitics p = extractRouted(nl_, n, grid, routes.nets[static_cast<std::size_t>(n)]);

  // Analytic bound: uniform RC line of total R, total C plus sink cap:
  // delay in [R*(C/2 + Cs) * 0.5, R*(C/2 + Cs) * 2] regardless of layer mix.
  const double cs = p.pinCap;
  const double analytic = p.totalRes * (p.wireCap / 2.0 + cs);
  EXPECT_GT(p.sinkWireDelay[1], 0.3 * analytic);
  EXPECT_LT(p.sinkWireDelay[1], 3.0 * analytic);
}

TEST_F(ExtractFixture, PinCapExcludesDriver) {
  const InstId a = addInvAt("a", 10, 10);
  const InstId b = addInvAt("b", 40, 40);
  const InstId c = addInvAt("c", 70, 70);
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  nl_.connect(n, c, "A");
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult routes = routeDesign(nl_, grid);
  const NetParasitics p = extractRouted(nl_, n, grid, routes.nets[static_cast<std::size_t>(n)]);
  const double invCap = lib_.cell(lib_.findCell("INV_X1")).pins[0].cap;
  EXPECT_DOUBLE_EQ(p.pinCap, 2.0 * invCap);
}

TEST_F(ExtractFixture, EstimationStarModel) {
  const InstId a = addInvAt("a", 0, 0);
  const InstId b = addInvAt("b", 100, 0);
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");

  EstimationOptions opt;
  opt.rPerUm = 2.0;
  opt.cPerUm = 0.2e-15;
  const NetParasitics p = estimateNet(nl_, n, opt);
  const double lenUm = dbuToUm(manhattanDistance(
      nl_.pinPosition(nl_.net(n).pins[0]), nl_.pinPosition(nl_.net(n).pins[1])));
  EXPECT_NEAR(p.wireCap, opt.cPerUm * lenUm, 1e-20);
  EXPECT_NEAR(p.totalRes, opt.rPerUm * lenUm, 1e-6);
  const double cs = p.pinCap;
  EXPECT_NEAR(p.sinkWireDelay[1],
              opt.rPerUm * lenUm * (opt.cPerUm * lenUm / 2.0 + cs), 1e-18);
  EXPECT_NEAR(p.sinkWireLengthUm[1], lenUm, 1e-9);
}

TEST_F(ExtractFixture, EstimationScalesApply) {
  const InstId a = addInvAt("a", 0, 0);
  const InstId b = addInvAt("b", 80, 0);
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");

  EstimationOptions base;
  EstimationOptions scaled = base;
  scaled.parasiticScale = 0.5;
  const NetParasitics pb = estimateNet(nl_, n, base);
  const NetParasitics ps = estimateNet(nl_, n, scaled);
  EXPECT_NEAR(ps.wireCap, 0.5 * pb.wireCap, 1e-20);
  EXPECT_NEAR(ps.totalRes, 0.5 * pb.totalRes, 1e-9);

  EstimationOptions len = base;
  len.lengthScale = 0.5;
  const NetParasitics pl = estimateNet(nl_, n, len);
  EXPECT_NEAR(pl.wireCap, 0.5 * pb.wireCap, 1e-20);
  EXPECT_NEAR(pl.sinkWireLengthUm[1], 0.5 * pb.sinkWireLengthUm[1], 1e-9);
}

TEST_F(ExtractFixture, MakeEstimationOptionsAveragesUpperLayers) {
  const EstimationOptions opt = makeEstimationOptions(tech_.beol);
  double r = 0.0;
  double c = 0.0;
  for (int l = 1; l < tech_.beol.numMetals(); ++l) {
    r += tech_.beol.metal(l).rPerUm;
    c += tech_.beol.metal(l).cPerUm;
  }
  EXPECT_NEAR(opt.rPerUm, r / 5.0, 1e-9);
  EXPECT_NEAR(opt.cPerUm, c / 5.0, 1e-24);
}

TEST_F(ExtractFixture, CapTotalsAggregates) {
  const InstId a = addInvAt("a", 10, 10);
  const InstId b = addInvAt("b", 80, 80);
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult routes = routeDesign(nl_, grid);
  const auto paras = extractDesign(nl_, grid, routes);
  const CapTotals t = capTotals(paras);
  EXPECT_GT(t.wireCapTotal, 0.0);
  EXPECT_GT(t.pinCapTotal, 0.0);
}

TEST_F(ExtractFixture, F2fViaParasiticsAppear) {
  // Build a combined stack and a route crossing the bond: extraction must
  // include the 44 mOhm / 1.0 fF contribution.
  const TechNode macroTech = makeTech28(4);
  const Beol combined =
      buildCombinedBeol(tech_.beol, macroTech.beol, F2fViaSpec{}, MacroDieStackOrder::kFlipped);
  // Port on the macro-die top (furthest from F2F) forces a crossing.
  const InstId a = addInvAt("a", 10, 10);
  const PortId port = nl_.addPort("up", PinDir::kOutput, Side::kNorth);
  nl_.port(port).layer = "M1_MD";
  nl_.port(port).pos = Point{umToDbu(50), umToDbu(100)};
  const NetId n = nl_.addNet("cross");
  nl_.connect(n, a, "Y");
  nl_.connectPort(n, port);

  RouteGrid grid(nl_, die_, combined);
  const RoutingResult routes = routeDesign(nl_, grid);
  ASSERT_EQ(routes.unroutedNets, 0);
  ASSERT_GE(routes.f2fBumps, 1);
  const NetParasitics p = extractRouted(nl_, n, grid, routes.nets[static_cast<std::size_t>(n)]);
  // Wire cap includes at least the bump cap.
  EXPECT_GE(p.wireCap, 1.0e-15);
}

}  // namespace
}  // namespace m3d
