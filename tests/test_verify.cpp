#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"
#include "verify/verify.hpp"

namespace m3d {
namespace {

/// Fault-injection tests for the signoff verifier: run one tiny Macro-3D
/// flow, then corrupt the committed design in four targeted ways and assert
/// each corruption is caught by exactly the right checker family with the
/// right payload. The uncorrupted design must sign off clean (the verifier
/// has zero false positives on healthy flows, zero false negatives here).
TileConfig tinyConfig() {
  TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

class VerifySignoff : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlowOptions opt;
    opt.maxFreqRounds = 2;
    opt.optBase.maxPasses = 6;
    out_ = new FlowOutput(runFlowMacro3D(tinyConfig(), opt));
  }
  static void TearDownTestSuite() {
    delete out_;
    out_ = nullptr;
  }

  /// Violations of \p kind in \p rep.
  static std::vector<Violation> of(const VerifyReport& rep, ViolationKind kind) {
    std::vector<Violation> v;
    for (const Violation& x : rep.violations) {
      if (x.kind == kind) v.push_back(x);
    }
    return v;
  }

  static FlowOutput* out_;
};

FlowOutput* VerifySignoff::out_ = nullptr;

TEST_F(VerifySignoff, CleanRunSignsOffClean) {
  const VerifyReport rep =
      verifyDesign(out_->tile->netlist, out_->fp, *out_->grid, out_->routes);
  EXPECT_TRUE(rep.clean()) << rep.summaryText();
  EXPECT_EQ(rep.errors, 0) << rep.summaryText();
  // Independent recounts agree with the router's own accounting.
  EXPECT_EQ(rep.recomputedOverflowedEdges, out_->routes.overflowedEdges);
  EXPECT_EQ(rep.recomputedTotalOverflow, out_->routes.totalOverflow);
  EXPECT_EQ(rep.f2fBumpCount, out_->routes.f2fBumps);
  // Per-net bump census totals the bump count.
  std::int64_t perNet = 0;
  for (const std::int64_t b : rep.f2fBumpsPerNet) perNet += b;
  EXPECT_EQ(perNet, rep.f2fBumpCount);
  // The flow's embedded report matches a standalone rerun (pure function).
  EXPECT_EQ(rep, out_->verify);
}

TEST_F(VerifySignoff, FamilyTogglesScopeTheRun) {
  VerifyOptions vopt;
  vopt.drc = vopt.connectivity = vopt.placement = vopt.f2f = false;
  const VerifyReport rep =
      verifyDesign(out_->tile->netlist, out_->fp, *out_->grid, out_->routes, vopt);
  EXPECT_TRUE(rep.violations.empty());
  EXPECT_EQ(rep.errors, 0);
  EXPECT_EQ(rep.warnings, 0);
}

// Injection 1: delete a middle segment of a routed two-pin net. The route
// tree splits and the connectivity checker must report the net open.
TEST_F(VerifySignoff, DeletedSegmentCaughtAsOpen) {
  const Netlist& nl = out_->tile->netlist;
  NetId victim = kInvalidId;
  for (NetId n = 0; n < static_cast<NetId>(out_->routes.nets.size()); ++n) {
    const NetRoute& r = out_->routes.nets[static_cast<std::size_t>(n)];
    if (r.routed && r.segs.size() >= 4 && nl.net(n).pins.size() == 2) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidId);

  RoutingResult corrupted = out_->routes;
  std::vector<RouteSeg>& segs = corrupted.nets[static_cast<std::size_t>(victim)].segs;
  segs.erase(segs.begin() + static_cast<std::ptrdiff_t>(segs.size() / 2));

  VerifyOptions vopt;
  vopt.drc = vopt.placement = vopt.f2f = false;  // scope to connectivity.
  const VerifyReport rep = verifyDesign(nl, out_->fp, *out_->grid, corrupted, vopt);
  EXPECT_FALSE(rep.clean());
  const std::vector<Violation> opens = of(rep, ViolationKind::kOpen);
  ASSERT_FALSE(opens.empty()) << rep.summaryText();
  for (const Violation& v : opens) {
    EXPECT_EQ(v.net, victim);
    EXPECT_EQ(familyOf(v.kind), CheckFamily::kConnectivity);
    EXPECT_EQ(severityOf(v.kind), Severity::kError);
  }
  // Every error the scoped run reports points at the corrupted net.
  for (const Violation& v : rep.violations) {
    if (severityOf(v.kind) == Severity::kError) EXPECT_EQ(v.net, victim);
  }
}

// Injection 2: alias one wire segment into many other nets, overfilling the
// track grid far beyond any detour window. The DRC checker must report
// shorts naming two distinct nets on the overfilled layer.
TEST_F(VerifySignoff, AliasedTrackCaughtAsShort) {
  const Netlist& nl = out_->tile->netlist;
  const RouteGrid& grid = *out_->grid;

  NetId victim = kInvalidId;
  RouteSeg aliased{};
  for (NetId n = 0; n < static_cast<NetId>(out_->routes.nets.size()) && victim == kInvalidId;
       ++n) {
    for (const RouteSeg& s : out_->routes.nets[static_cast<std::size_t>(n)].segs) {
      if (!s.isVia && s.layer >= 2) {
        victim = n;
        aliased = s;
        break;
      }
    }
  }
  ASSERT_NE(victim, kInvalidId);

  RoutingResult corrupted = out_->routes;
  int stuffed = 0;
  for (NetId n = 0; n < static_cast<NetId>(corrupted.nets.size()) && stuffed < 120; ++n) {
    if (n == victim) continue;
    NetRoute& r = corrupted.nets[static_cast<std::size_t>(n)];
    if (!r.routed || r.segs.empty()) continue;
    r.segs.push_back(aliased);
    ++stuffed;
  }
  ASSERT_GE(stuffed, 120);

  VerifyOptions vopt;
  vopt.connectivity = vopt.placement = vopt.f2f = false;  // scope to DRC.
  const VerifyReport rep = verifyDesign(nl, out_->fp, grid, corrupted, vopt);
  EXPECT_FALSE(rep.clean());
  const std::vector<Violation> shorts = of(rep, ViolationKind::kShort);
  ASSERT_FALSE(shorts.empty()) << rep.summaryText();
  for (const Violation& v : shorts) {
    EXPECT_EQ(familyOf(v.kind), CheckFamily::kDrc);
    EXPECT_EQ(v.layer, aliased.layer);
    EXPECT_NE(v.net, kInvalidId);
    EXPECT_NE(v.otherNet, kInvalidId);
    EXPECT_NE(v.net, v.otherNet);
    EXPECT_FALSE(v.rect.isEmpty());
  }
}

// Injection 3: nudge a placed standard cell off its row. The placement
// checker must report kOffRow naming that cell.
TEST_F(VerifySignoff, OffRowCellCaughtByPlacement) {
  Netlist& nl = out_->tile->netlist;
  InstId victim = kInvalidId;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const CellType& c = nl.cellOf(i);
    if (!nl.instance(i).fixed && !c.isMacro() && c.cls != CellClass::kFiller) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidId);

  const Point saved = nl.instance(victim).pos;
  nl.instance(victim).pos.y += out_->fp.rowHeight / 3;

  VerifyOptions vopt;
  vopt.drc = vopt.connectivity = vopt.f2f = false;  // scope to placement.
  const VerifyReport rep = verifyDesign(nl, out_->fp, *out_->grid, out_->routes, vopt);
  nl.instance(victim).pos = saved;  // restore the shared fixture.

  EXPECT_FALSE(rep.clean());
  const std::vector<Violation> offRow = of(rep, ViolationKind::kOffRow);
  ASSERT_FALSE(offRow.empty()) << rep.summaryText();
  for (const Violation& v : offRow) {
    EXPECT_EQ(v.cell, victim);
    EXPECT_EQ(familyOf(v.kind), CheckFamily::kPlacement);
  }
}

// Injection 4: drop every F2F via of a die-crossing net. The 3D interface
// checker must report the missing bond-layer crossing for that net.
TEST_F(VerifySignoff, DroppedF2fViaCaughtByInterfaceCheck) {
  const Netlist& nl = out_->tile->netlist;
  const int f2fCut = out_->grid->f2fCutLayer();
  ASSERT_GE(f2fCut, 0) << "combined stack expected";

  ASSERT_FALSE(out_->verify.f2fBumpsPerNet.empty());
  NetId victim = kInvalidId;
  for (NetId n = 0; n < static_cast<NetId>(out_->verify.f2fBumpsPerNet.size()); ++n) {
    if (out_->verify.f2fBumpsPerNet[static_cast<std::size_t>(n)] > 0) {
      victim = n;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidId);

  RoutingResult corrupted = out_->routes;
  std::vector<RouteSeg>& segs = corrupted.nets[static_cast<std::size_t>(victim)].segs;
  std::erase_if(segs, [&](const RouteSeg& s) { return s.isVia && s.layer == f2fCut; });

  VerifyOptions vopt;
  vopt.drc = vopt.connectivity = vopt.placement = false;  // scope to F2F.
  const VerifyReport rep = verifyDesign(nl, out_->fp, *out_->grid, corrupted, vopt);
  EXPECT_FALSE(rep.clean());
  const std::vector<Violation> missing = of(rep, ViolationKind::kMissingF2fCrossing);
  ASSERT_EQ(missing.size(), 1u) << rep.summaryText();
  EXPECT_EQ(missing.front().net, victim);
  EXPECT_EQ(missing.front().layer, f2fCut);
  EXPECT_EQ(familyOf(missing.front().kind), CheckFamily::kF2f);
  // The bump census shrinks by exactly the dropped crossings.
  EXPECT_EQ(rep.f2fBumpCount,
            out_->verify.f2fBumpCount -
                out_->verify.f2fBumpsPerNet[static_cast<std::size_t>(victim)]);
  EXPECT_EQ(rep.f2fBumpsPerNet[static_cast<std::size_t>(victim)], 0);
}

}  // namespace
}  // namespace m3d
