#include <iostream>
#include "flows/flows.hpp"
#include "flows/case_study.hpp"

int main() {
  using namespace m3d;
  {
    const FlowOutput mol = runFlowS2D(makeSmallCacheTileConfig(), false);
    std::cout << "=== MoL S2D ===\n" << mol.trace << "\n";
  }
  const FlowOutput bf = runFlowS2D(makeSmallCacheTileConfig(), true);
  std::cout << "=== BF S2D ===\n" << bf.trace << "\n";
  // Where did the macros land?
  const Netlist& nl = bf.tile->netlist;
  int logicMacros = 0, macroMacros = 0;
  std::int64_t logicMacroArea = 0;
  for (InstId m : bf.tile->groups.macros) {
    if (nl.instance(m).die == DieId::kLogic) {
      ++logicMacros;
      logicMacroArea += nl.cellOf(m).boundingArea();
    } else {
      ++macroMacros;
    }
  }
  std::cout << "logic-die macros=" << logicMacros << " area_um2=" << dbu2ToUm2(logicMacroArea)
            << " macro-die macros=" << macroMacros << "\n";
  std::cout << "die=" << dbuToUm(bf.fp.die.width()) << "x" << dbuToUm(bf.fp.die.height())
            << " blockages=" << bf.fp.blockages.size() << "\n";
  return 0;
}
