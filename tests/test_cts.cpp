#include <gtest/gtest.h>

#include <cmath>

#include "cts/cts.hpp"
#include "extract/extraction.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class CtsFixture : public ::testing::Test {
 protected:
  CtsFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  /// Builds N flip-flops on a grid, all clocked by one net, each with its
  /// data path stubbed out so the netlist validates.
  void buildSinks(int n) {
    clk_ = nl_.addNet("clk");
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    nl_.connectPort(clk_, clkPort);
    const PortId in = nl_.addPort("d", PinDir::kInput, Side::kWest);
    const NetId din = nl_.addNet("din");
    nl_.connectPort(din, in);

    const int cols = static_cast<int>(std::sqrt(static_cast<double>(n))) + 1;
    for (int i = 0; i < n; ++i) {
      const InstId ff = nl_.addInstance("ff" + std::to_string(i), lib_.findCell("DFF_X1"));
      ffs_.push_back(ff);
      nl_.instance(ff).pos = Point{umToDbu(5.0 + 8.0 * (i % cols)),
                                   snapUp(umToDbu(5.0 + 8.0 * (i / cols)), tech_.rowHeight)};
      nl_.connect(clk_, ff, "CK");
      nl_.connect(din, ff, "D");
      const NetId q = nl_.addNet("q" + std::to_string(i));
      const PortId out = nl_.addPort("o" + std::to_string(i), PinDir::kOutput, Side::kEast);
      nl_.connect(q, ff, "Q");
      nl_.connectPort(q, out);
    }

    fp_.die = Rect{0, 0, umToDbu(120), snapUp(umToDbu(120), tech_.rowHeight)};
    fp_.rowHeight = tech_.rowHeight;
    fp_.siteWidth = tech_.siteWidth;
    assignPorts(nl_, fp_.die);
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Floorplan fp_;
  NetId clk_ = kInvalidId;
  std::vector<InstId> ffs_;
};

TEST_F(CtsFixture, TreeConnectsAllSinks) {
  buildSinks(100);
  const CtsResult cts = synthesizeClockTree(nl_, clk_, fp_);
  EXPECT_EQ(cts.numSinks, 100);
  EXPECT_GT(cts.buffers.size(), 0u);
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();

  // Every flip-flop CK pin must be on a clock net driven by a CTS buffer.
  for (InstId ff : ffs_) {
    const int ck = *nl_.cellOf(ff).findPin("CK");
    const NetId net = nl_.instance(ff).pinNets[static_cast<std::size_t>(ck)];
    ASSERT_NE(net, kInvalidId);
    EXPECT_TRUE(nl_.net(net).isClock);
    EXPECT_NE(net, clk_) << "sink must move off the root net";
  }
  // The root clock net now drives exactly the root buffer.
  EXPECT_EQ(nl_.net(clk_).pins.size(), 2u);
}

TEST_F(CtsFixture, LeafFanoutBounded) {
  buildSinks(150);
  CtsOptions opt;
  opt.maxSinksPerLeaf = 9;
  const CtsResult cts = synthesizeClockTree(nl_, clk_, fp_, opt);
  for (const CtsBuffer& b : cts.buffers) {
    int ckSinks = 0;
    for (const NetPin& p : nl_.net(b.outputNet).pins) {
      if (p.kind != NetPin::Kind::kInstPin) continue;
      if (nl_.cellOf(p.inst).pins[static_cast<std::size_t>(p.libPin)].isClock) ++ckSinks;
    }
    EXPECT_LE(ckSinks, 9);
  }
  (void)cts;
}

TEST_F(CtsFixture, DepthGrowsLogarithmically) {
  buildSinks(40);
  const CtsResult small = synthesizeClockTree(nl_, clk_, fp_);

  // A second, independent fixture with 16x the sinks.
  Library lib2 = makeStdCellLib(tech_);
  Netlist nl2(&lib2);
  Floorplan fp2;
  NetId clk2 = nl2.addNet("clk");
  const PortId clkPort = nl2.addPort("clk", PinDir::kInput, Side::kWest, true);
  nl2.connectPort(clk2, clkPort);
  const PortId in = nl2.addPort("d", PinDir::kInput, Side::kWest);
  const NetId din = nl2.addNet("din");
  nl2.connectPort(din, in);
  for (int i = 0; i < 640; ++i) {
    const InstId ff = nl2.addInstance("ff" + std::to_string(i), lib2.findCell("DFF_X1"));
    nl2.instance(ff).pos = Point{umToDbu(5.0 + 4.0 * (i % 26)),
                                 snapUp(umToDbu(5.0 + 4.0 * (i / 26)), tech_.rowHeight)};
    nl2.connect(clk2, ff, "CK");
    nl2.connect(din, ff, "D");
    const NetId q = nl2.addNet("q" + std::to_string(i));
    const PortId out = nl2.addPort("o" + std::to_string(i), PinDir::kOutput, Side::kEast);
    nl2.connect(q, ff, "Q");
    nl2.connectPort(q, out);
  }
  fp2.die = Rect{0, 0, umToDbu(120), snapUp(umToDbu(120), tech_.rowHeight)};
  fp2.rowHeight = tech_.rowHeight;
  fp2.siteWidth = tech_.siteWidth;
  const CtsResult large = synthesizeClockTree(nl2, clk2, fp2);
  EXPECT_GT(large.maxDepth, small.maxDepth);
  EXPECT_LE(large.maxDepth, small.maxDepth + 5);  // ~log2(16) = 4 extra levels
}

TEST_F(CtsFixture, UpperLevelsUseStrongerBuffers) {
  buildSinks(400);
  const CtsResult cts = synthesizeClockTree(nl_, clk_, fp_);
  int rootStrength = 0;
  int leafStrength = 1 << 20;
  for (const CtsBuffer& b : cts.buffers) {
    const int ds = nl_.cellOf(b.inst).driveStrength;
    if (b.level <= 2) rootStrength = std::max(rootStrength, ds);
    if (b.level == cts.maxDepth) leafStrength = std::min(leafStrength, ds);
  }
  EXPECT_GE(rootStrength, leafStrength);
}

TEST_F(CtsFixture, ClockModelLatenciesBalancedWithUncertainty) {
  buildSinks(120);
  const CtsResult cts = synthesizeClockTree(nl_, clk_, fp_);
  // Estimated parasitics stand in for routed extraction here.
  const EstimationOptions eopt = makeEstimationOptions(tech_.beol);
  const auto paras = estimateDesign(nl_, eopt);
  const ClockModel model = updateClockModel(nl_, paras, cts);

  EXPECT_EQ(model.maxTreeDepth, cts.maxDepth);
  EXPECT_GT(model.maxLatency, 0.0);
  EXPECT_GE(model.skew, 0.0);
  EXPECT_NEAR(model.uncertainty, 0.05 * model.maxLatency, 1e-15);
  // Balancing: every clocked sink gets the max latency.
  for (InstId ff : ffs_) {
    EXPECT_DOUBLE_EQ(model.latencyOf(ff), model.maxLatency);
  }
}

TEST_F(CtsFixture, SmallSinkCountSingleLeaf) {
  buildSinks(5);
  const CtsResult cts = synthesizeClockTree(nl_, clk_, fp_);
  EXPECT_EQ(cts.numSinks, 5);
  EXPECT_EQ(cts.buffers.size(), 1u);  // root buffer only
  EXPECT_EQ(cts.maxDepth, 1);
  EXPECT_TRUE(nl_.validate().empty());
}

TEST_F(CtsFixture, CtsNetsAreClockNets) {
  buildSinks(60);
  const CtsResult cts = synthesizeClockTree(nl_, clk_, fp_);
  for (const CtsBuffer& b : cts.buffers) {
    EXPECT_TRUE(nl_.net(b.outputNet).isClock);
  }
}

}  // namespace
}  // namespace m3d
