#include <gtest/gtest.h>

#include "tech/beol.hpp"
#include "tech/combined_beol.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

TEST(TechNode, Make28HasExpectedShape) {
  const TechNode t = makeTech28(6);
  EXPECT_EQ(t.beol.numMetals(), 6);
  EXPECT_EQ(t.beol.numCuts(), 5);
  EXPECT_TRUE(t.beol.validate().empty()) << t.beol.validate();
  EXPECT_GT(t.siteWidth, 0);
  EXPECT_GT(t.rowHeight, 0);
  EXPECT_GT(t.vdd, 0.0);
  EXPECT_EQ(t.beol.metal(0).name, "M1");
  EXPECT_EQ(t.beol.metal(5).name, "M6");
  EXPECT_EQ(t.beol.cut(0).name, "VIA12");
}

TEST(TechNode, AlternatingDirections) {
  const TechNode t = makeTech28(8);
  for (int i = 1; i < t.beol.numMetals(); ++i) {
    EXPECT_NE(t.beol.metal(i).dir, t.beol.metal(i - 1).dir) << "layer " << i;
  }
}

TEST(TechNode, ThinVsThickLayers) {
  const TechNode t = makeTech28(6);
  // 1x metals are narrower and more resistive than 2x metals.
  EXPECT_LT(t.beol.metal(0).pitch, t.beol.metal(5).pitch);
  EXPECT_GT(t.beol.metal(0).rPerUm, t.beol.metal(5).rPerUm);
}

TEST(TechNode, SiteArea) {
  const TechNode t = makeTech28(4);
  EXPECT_EQ(t.siteArea(), static_cast<std::int64_t>(t.siteWidth) * t.rowHeight);
}

TEST(Beol, ValidateCatchesBadStacks) {
  Beol b;
  MetalLayer m1{"M1", LayerDir::kHorizontal, 100, 50, 1.0, 1e-16, DieId::kLogic};
  b.addMetal(m1);
  EXPECT_TRUE(b.validate().empty());

  Beol same;
  same.addMetal(m1);
  CutLayer c{"V1", 5.0, 1e-17, 130, 50, false, DieId::kLogic};
  same.addCut(c);
  MetalLayer m2 = m1;
  m2.name = "M2";  // same direction as M1 -> invalid
  same.addMetal(m2);
  EXPECT_FALSE(same.validate().empty());
}

TEST(Beol, FindMetalAndOrderString) {
  const TechNode t = makeTech28(4);
  EXPECT_EQ(*t.beol.findMetal("M3"), 2);
  EXPECT_FALSE(t.beol.findMetal("M9").has_value());
  const std::string order = t.beol.orderString();
  EXPECT_NE(order.find("M1 -> VIA12 -> M2"), std::string::npos);
}

TEST(MacroDieNames, SuffixHelpers) {
  EXPECT_FALSE(isMacroDieLayerName("M4"));
  EXPECT_TRUE(isMacroDieLayerName("M4_MD"));
  EXPECT_EQ(toMacroDieLayerName("M4"), "M4_MD");
  EXPECT_EQ(stripMacroDieSuffix("M4_MD"), "M4");
  EXPECT_EQ(stripMacroDieSuffix("M4"), "M4");
  EXPECT_EQ(stripMacroDieSuffix("VIA12_MD"), "VIA12");
}

TEST(CombinedBeol, FlippedOrderStructure) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  const Beol c = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{},
                                   MacroDieStackOrder::kFlipped);
  ASSERT_TRUE(c.validate().empty()) << c.validate();
  EXPECT_EQ(c.numMetals(), 10);
  EXPECT_EQ(c.numCuts(), 9);
  EXPECT_TRUE(c.isCombined());
  EXPECT_TRUE(c.macroDieFlipped());
  ASSERT_TRUE(c.f2fCutIndex().has_value());
  EXPECT_EQ(*c.f2fCutIndex(), 5);  // above M6
  EXPECT_TRUE(c.cut(5).isF2f);
  // Flipped: macro top metal adjacent to the bond layer.
  EXPECT_EQ(c.metal(6).name, "M4_MD");
  EXPECT_EQ(c.metal(9).name, "M1_MD");
  EXPECT_EQ(c.metal(6).die, DieId::kMacro);
  EXPECT_EQ(c.metal(5).die, DieId::kLogic);
}

TEST(CombinedBeol, AsListedOrderMatchesPaperText) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  const Beol c = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{},
                                   MacroDieStackOrder::kAsListed);
  ASSERT_TRUE(c.validate().empty()) << c.validate();
  EXPECT_FALSE(c.macroDieFlipped());
  // Paper Sec. IV: M1 -> VIA12 ... M6 -> F2F_VIA -> M1_MD -> ... -> M4_MD.
  EXPECT_EQ(c.metal(6).name, "M1_MD");
  EXPECT_EQ(c.metal(9).name, "M4_MD");
  EXPECT_EQ(c.cut(6).name, "VIA12_MD");
}

TEST(CombinedBeol, F2fSpecPropagates) {
  const TechNode logic = makeTech28(6);
  F2fViaSpec spec;
  const Beol c = buildCombinedBeol(logic.beol, logic.beol, spec);
  const CutLayer& f2f = c.cut(*c.f2fCutIndex());
  // Paper Sec. V-2 numbers.
  EXPECT_EQ(f2f.pitch, umToDbu(1.0));
  EXPECT_EQ(f2f.size, umToDbu(0.5));
  EXPECT_DOUBLE_EQ(f2f.res, 0.044);
  EXPECT_DOUBLE_EQ(f2f.cap, 1.0e-15);
  EXPECT_EQ(f2f.name, "F2F_VIA");
}

TEST(CombinedBeol, DirectionsAlternateAcrossBond) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  for (auto order : {MacroDieStackOrder::kFlipped, MacroDieStackOrder::kAsListed}) {
    const Beol c = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{}, order);
    for (int i = 1; i < c.numMetals(); ++i) {
      EXPECT_NE(c.metal(i).dir, c.metal(i - 1).dir) << "layer " << i;
    }
  }
}

TEST(CombinedBeol, MetalCountsPerDie) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  const Beol c = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{});
  EXPECT_EQ(c.numMetalsOfDie(DieId::kLogic), 6);
  EXPECT_EQ(c.numMetalsOfDie(DieId::kMacro), 4);
  EXPECT_EQ(c.topMetalOfDie(DieId::kLogic), 5);
  EXPECT_EQ(c.topMetalOfDie(DieId::kMacro), 9);
}

class SeparationRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, MacroDieStackOrder>> {};

TEST_P(SeparationRoundTrip, SeparateRestoresOriginalStacks) {
  const auto [nLogic, nMacro, order] = GetParam();
  const TechNode logic = makeTech28(nLogic);
  const TechNode macro = makeTech28(nMacro);
  const Beol combined = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{}, order);
  const SeparatedBeols sep = separateBeol(combined, order);

  ASSERT_EQ(sep.logicDie.numMetals(), nLogic);
  ASSERT_EQ(sep.macroDie.numMetals(), nMacro);
  for (int i = 0; i < nLogic; ++i) {
    EXPECT_EQ(sep.logicDie.metal(i).name, logic.beol.metal(i).name);
    EXPECT_EQ(sep.logicDie.metal(i).pitch, logic.beol.metal(i).pitch);
  }
  for (int i = 0; i < nMacro; ++i) {
    EXPECT_EQ(sep.macroDie.metal(i).name, macro.beol.metal(i).name);
    EXPECT_EQ(sep.macroDie.metal(i).rPerUm, macro.beol.metal(i).rPerUm);
  }
  for (int i = 0; i + 1 < nMacro; ++i) {
    EXPECT_EQ(sep.macroDie.cut(i).name, macro.beol.cut(i).name);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, SeparationRoundTrip,
    ::testing::Combine(::testing::Values(4, 6, 8), ::testing::Values(2, 4, 6),
                       ::testing::Values(MacroDieStackOrder::kFlipped,
                                         MacroDieStackOrder::kAsListed)));

}  // namespace
}  // namespace m3d
