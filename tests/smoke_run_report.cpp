/// \file smoke_run_report.cpp
/// ctest smoke check for the observability layer: runs the Macro-3D flow on
/// a tiny tile with a report path AND a Chrome-trace path set (at 4 pool
/// threads), then re-reads both emitted JSON documents with the obs parser.
/// The run report must be structurally complete -- all seven pipeline
/// stages present with nonzero wall-clock, and the key metric series
/// (place.hpwl, route.f2f_bumps, sta.wns_ps) populated. The trace must
/// carry the stage spans as 'X' events on the flow track, pool.task events
/// on at least two distinct worker tracks, and counter tracks for the
/// placer HPWL and router overflow series.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"
#include "obs/json.hpp"

namespace {

int gFailures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++gFailures;
    std::cerr << "FAIL: " << what << "\n";
  }
}

m3d::TileConfig tinyConfig() {
  m3d::TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = m3d::CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

}  // namespace

namespace {

/// Parses the Chrome trace written by the flow and asserts the acceptance
/// properties: well-formed, monotone timestamps, pid/tid on every event,
/// stage spans, >= 2 pool worker tracks, and the convergence counters.
void checkTrace(const std::string& tracePath) {
  using namespace m3d;

  std::ifstream is(tracePath);
  check(is.good(), "trace file exists: " + tracePath);
  std::stringstream buf;
  buf << is.rdbuf();

  std::string err;
  const auto doc = obs::parseJson(buf.str(), &err);
  check(doc.has_value(), "trace JSON parses (" + err + ")");
  if (!doc.has_value()) return;

  const obs::JsonValue* events = doc->find("traceEvents");
  check(events != nullptr && events->isArray() && !events->arr.empty(),
        "traceEvents array non-empty");
  if (events == nullptr || !events->isArray()) return;

  std::set<std::string> spanNames;
  std::set<std::string> counterNames;
  std::set<int> workerTids;
  double lastTs = -1.0;
  bool monotone = true;
  bool fieldsOk = true;
  for (const obs::JsonValue& e : events->arr) {
    const obs::JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->isString() || e.find("pid") == nullptr ||
        e.find("tid") == nullptr) {
      fieldsOk = false;
      continue;
    }
    if (ph->str == "M") continue;  // metadata carries no timestamp
    const obs::JsonValue* ts = e.find("ts");
    if (ts == nullptr || !ts->isNumber()) {
      fieldsOk = false;
      continue;
    }
    if (ts->number < lastTs) monotone = false;
    lastTs = ts->number;
    const obs::JsonValue* name = e.find("name");
    if (name == nullptr || !name->isString()) {
      fieldsOk = false;
      continue;
    }
    if (ph->str == "X") {
      spanNames.insert(name->str);
      if (name->str == "pool.task") {
        const int tid = static_cast<int>(e.numberOr("tid", -1.0));
        if (tid >= 1 && tid < 64) workerTids.insert(tid);
      }
    } else if (ph->str == "C") {
      counterNames.insert(name->str);
    }
  }
  check(fieldsOk, "every trace event has ph/pid/tid (+ts when timed)");
  check(monotone, "trace event timestamps are monotone non-decreasing");
  for (const char* stage : kPipelineStageNames) {
    check(spanNames.count(stage) == 1, std::string("trace span '") + stage + "' present");
  }
  check(workerTids.size() >= 2,
        "pool.task events on >= 2 distinct worker tracks (got " +
            std::to_string(workerTids.size()) + ")");
  check(counterNames.count("place.hpwl") == 1, "counter track 'place.hpwl' present");
  check(counterNames.count("route.iter_overflow") == 1,
        "counter track 'route.iter_overflow' present");
}

}  // namespace

int main() {
  using namespace m3d;

  // Pin the pool width so the trace reliably shows multiple worker tracks.
  ::setenv("M3D_THREADS", "4", /*overwrite=*/1);

  const std::string path = "smoke_run_report.json";
  const std::string tracePath = "smoke_run_report.trace.json";
  FlowOptions opt;
  opt.maxFreqRounds = 2;
  opt.optBase.maxPasses = 6;
  opt.report.jsonPath = path;
  opt.traceOut = tracePath;

  const FlowOutput out = runFlowMacro3D(tinyConfig(), opt);

  // The in-memory report mirrors what was written.
  check(out.report.flow == "Macro-3D", "report.flow is Macro-3D");
  check(out.report.wallMs > 0.0, "report.wallMs > 0");

  std::ifstream is(path);
  check(is.good(), "report file exists: " + path);
  std::stringstream buf;
  buf << is.rdbuf();

  std::string err;
  const auto doc = obs::parseJson(buf.str(), &err);
  check(doc.has_value(), "report JSON parses (" + err + ")");
  if (!doc.has_value()) return 1;

  const obs::JsonValue* schema = doc->find("schema");
  check(schema != nullptr && schema->str == "m3d.run_report/1", "schema tag");
  const obs::JsonValue* flow = doc->find("flow");
  check(flow != nullptr && flow->str == "Macro-3D", "flow name");
  check(doc->numberOr("wall_ms", 0.0) > 0.0, "wall_ms > 0");

  // All seven pipeline stages must appear under the root span, each with a
  // nonzero duration (skipped stages still open their span).
  const obs::JsonValue* span = doc->find("span");
  check(span != nullptr && span->isObject(), "root span present");
  if (span != nullptr) {
    const obs::JsonValue* children = span->find("children");
    check(children != nullptr && children->isArray(), "root span has children");
    if (children != nullptr) {
      for (const char* stage : kPipelineStageNames) {
        bool found = false;
        for (const obs::JsonValue& c : children->arr) {
          const obs::JsonValue* name = c.find("name");
          if (name != nullptr && name->str == stage) {
            found = true;
            check(c.numberOr("dur_ms", 0.0) > 0.0,
                  std::string("stage '") + stage + "' has nonzero dur_ms");
            break;
          }
        }
        check(found, std::string("stage span '") + stage + "' present");
      }
    }
  }

  // Key metric series recorded during the run.
  const obs::JsonValue* series = doc->find("series");
  check(series != nullptr && series->isObject(), "series object present");
  if (series != nullptr) {
    for (const char* name : {"place.hpwl", "route.f2f_bumps", "sta.wns_ps"}) {
      const obs::JsonValue* s = series->find(name);
      check(s != nullptr && s->isArray() && !s->arr.empty(),
            std::string("series '") + name + "' non-empty");
    }
  }

  // Final metrics round-trip.
  const obs::JsonValue* finals = doc->find("final");
  check(finals != nullptr && finals->isObject(), "final metrics present");
  if (finals != nullptr) {
    check(finals->numberOr("fclk_mhz", 0.0) > 0.0, "final fclk_mhz > 0");
    check(finals->numberOr("f2f_bumps", -1.0) >= 0.0, "final f2f_bumps present");
  }

  checkTrace(tracePath);

  if (gFailures == 0) {
    std::cout << "smoke_run_report: OK (" << path << ", " << tracePath << ")\n";
    return 0;
  }
  std::cerr << "smoke_run_report: " << gFailures << " failure(s)\n";
  return 1;
}
