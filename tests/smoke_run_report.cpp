/// \file smoke_run_report.cpp
/// ctest smoke check for the observability layer: runs the Macro-3D flow on
/// a tiny tile with a report path set, then re-reads the emitted JSON with
/// the obs parser and asserts the report is structurally complete -- all
/// seven pipeline stages present with nonzero wall-clock, and the key metric
/// series (place.hpwl, route.f2f_bumps, sta.wns_ps) populated.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"
#include "obs/json.hpp"

namespace {

int gFailures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++gFailures;
    std::cerr << "FAIL: " << what << "\n";
  }
}

m3d::TileConfig tinyConfig() {
  m3d::TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = m3d::CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

}  // namespace

int main() {
  using namespace m3d;

  const std::string path = "smoke_run_report.json";
  FlowOptions opt;
  opt.maxFreqRounds = 2;
  opt.optBase.maxPasses = 6;
  opt.report.jsonPath = path;

  const FlowOutput out = runFlowMacro3D(tinyConfig(), opt);

  // The in-memory report mirrors what was written.
  check(out.report.flow == "Macro-3D", "report.flow is Macro-3D");
  check(out.report.wallMs > 0.0, "report.wallMs > 0");

  std::ifstream is(path);
  check(is.good(), "report file exists: " + path);
  std::stringstream buf;
  buf << is.rdbuf();

  std::string err;
  const auto doc = obs::parseJson(buf.str(), &err);
  check(doc.has_value(), "report JSON parses (" + err + ")");
  if (!doc.has_value()) return 1;

  const obs::JsonValue* schema = doc->find("schema");
  check(schema != nullptr && schema->str == "m3d.run_report/1", "schema tag");
  const obs::JsonValue* flow = doc->find("flow");
  check(flow != nullptr && flow->str == "Macro-3D", "flow name");
  check(doc->numberOr("wall_ms", 0.0) > 0.0, "wall_ms > 0");

  // All seven pipeline stages must appear under the root span, each with a
  // nonzero duration (skipped stages still open their span).
  const obs::JsonValue* span = doc->find("span");
  check(span != nullptr && span->isObject(), "root span present");
  if (span != nullptr) {
    const obs::JsonValue* children = span->find("children");
    check(children != nullptr && children->isArray(), "root span has children");
    if (children != nullptr) {
      for (const char* stage : kPipelineStageNames) {
        bool found = false;
        for (const obs::JsonValue& c : children->arr) {
          const obs::JsonValue* name = c.find("name");
          if (name != nullptr && name->str == stage) {
            found = true;
            check(c.numberOr("dur_ms", 0.0) > 0.0,
                  std::string("stage '") + stage + "' has nonzero dur_ms");
            break;
          }
        }
        check(found, std::string("stage span '") + stage + "' present");
      }
    }
  }

  // Key metric series recorded during the run.
  const obs::JsonValue* series = doc->find("series");
  check(series != nullptr && series->isObject(), "series object present");
  if (series != nullptr) {
    for (const char* name : {"place.hpwl", "route.f2f_bumps", "sta.wns_ps"}) {
      const obs::JsonValue* s = series->find(name);
      check(s != nullptr && s->isArray() && !s->arr.empty(),
            std::string("series '") + name + "' non-empty");
    }
  }

  // Final metrics round-trip.
  const obs::JsonValue* finals = doc->find("final");
  check(finals != nullptr && finals->isObject(), "final metrics present");
  if (finals != nullptr) {
    check(finals->numberOr("fclk_mhz", 0.0) > 0.0, "final fclk_mhz > 0");
    check(finals->numberOr("f2f_bumps", -1.0) >= 0.0, "final f2f_bumps present");
  }

  if (gFailures == 0) {
    std::cout << "smoke_run_report: OK (" << path << ")\n";
    return 0;
  }
  std::cerr << "smoke_run_report: " << gFailures << " failure(s)\n";
  return 1;
}
