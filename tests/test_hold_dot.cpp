#include <gtest/gtest.h>

#include <sstream>

#include "extract/extraction.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/dot_export.hpp"
#include "netlist/logic_cloud.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class HoldFixture : public ::testing::Test {
 protected:
  HoldFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {
    const NetId clk = nl_.addNet("clk");
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    nl_.connectPort(clk, clkPort);
    Rng rng(9);
    CloudSpec spec;
    spec.prefix = "h";
    spec.numGates = 150;
    spec.numRegs = 30;
    spec.clockNet = clk;
    buildLogicCloud(nl_, rng, spec);
    EstimationOptions eopt = makeEstimationOptions(tech_.beol);
    paras_ = estimateDesign(nl_, eopt);
  }
  TechNode tech_;
  Library lib_;
  Netlist nl_;
  std::vector<NetParasitics> paras_;
};

TEST_F(HoldFixture, HoldSlackIsFiniteAndBelowSetupArrival) {
  Sta sta(nl_, paras_);
  const double hold = sta.worstHoldSlack(0.0);
  // Min arrival through at least CK->Q (85ps) must be positive.
  EXPECT_GT(hold, 50e-12);
  // Min-path arrival can never exceed the max-path arrival budget: with a
  // generous period the setup WNS is large while hold stays the same.
  EXPECT_LT(hold, sta.findMinPeriod());
}

TEST_F(HoldFixture, HoldMarginShiftsSlackLinearly) {
  Sta sta(nl_, paras_);
  const double h0 = sta.worstHoldSlack(0.0);
  const double h20 = sta.worstHoldSlack(20e-12);
  EXPECT_NEAR(h0 - h20, 20e-12, 1e-15);
}

TEST_F(HoldFixture, BalancedClockCannotCreateHoldViolationHere) {
  // With uniformly padded latencies, launch and capture shift together; the
  // library's DFF CK->Q (85 ps) exceeds any reasonable hold requirement.
  ClockModel clock;
  clock.latency.assign(static_cast<std::size_t>(nl_.numInstances()), 300e-12);
  clock.maxLatency = 300e-12;
  Sta sta(nl_, paras_, &clock);
  EXPECT_GT(sta.worstHoldSlack(10e-12), 0.0);
}

TEST_F(HoldFixture, DotExportContainsInstancesAndEdges) {
  std::ostringstream os;
  writeDot(os, nl_, "cloud", DotOptions{.maxInstances = 50});
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph \"cloud\""), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("h_r0"), std::string::npos);
  // Clock nets excluded by default (the clock PORT node still appears).
  EXPECT_EQ(dot.find("label=\"clk\", fontsize=7"), std::string::npos);
  // Bounded size.
  EXPECT_LT(dot.size(), 100000u);
}

TEST_F(HoldFixture, DotIncludeClockOption) {
  std::ostringstream os;
  writeDot(os, nl_, "cloud", DotOptions{.maxInstances = 0, .includeClockNets = true});
  EXPECT_NE(os.str().find("label=\"clk\", fontsize=7"), std::string::npos);
}

}  // namespace
}  // namespace m3d
