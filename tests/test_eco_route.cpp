#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/macro3d.hpp"
#include "flows/flows.hpp"
#include "flows/flow_checkpoint.hpp"
#include "lib/macro_projection.hpp"
#include "lib/sram_generator.hpp"
#include "lib/stdcell_factory.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"
#include "tech/combined_beol.hpp"
#include "tech/tech_node.hpp"
#include "verify/verify.hpp"

/// Incremental (ECO) reroute equivalence wall.
///
/// Router level (EcoRoute*, quick): routeDesignEco against a perturbed-
/// capacity grid must reuse every clean net's segment list byte-identically,
/// rip only nets sitting on *violated* edges (capacity decreased below the
/// previous usage -- a pure capacity increase rips nothing), and end with
/// the same overflow as a from-scratch route of the new grid. Exercised on
/// both a single-die 6-metal BEOL and a combined F2F-bonded 3D stack
/// (bump-pitch ECO). Flow level (FlowEcoReroute*, slow): the ecoRouteFrom
/// seeding path through runPnrPipeline must stay signoff-clean and match
/// the cold run.

namespace m3d {
namespace {

/// Deterministic scatter of 2-3 pin nets, sparse enough to route overflow-
/// free (overflow equality below is then exact, not coincidental).
struct EcoProblem {
  explicit EcoProblem(const TechNode& t, int numInsts = 70, std::uint64_t seed = 555)
      : tech(t), lib(makeStdCellLib(tech)), nl(&lib) {
    std::mt19937_64 rng(seed);
    std::vector<InstId> insts;
    for (int i = 0; i < numInsts; ++i) {
      const InstId id = nl.addInstance("g" + std::to_string(i), lib.findCell("INV_X1"));
      nl.instance(id).pos = Point{umToDbu(2.0 + static_cast<double>(rng() % 115)),
                                  umToDbu(2.0 + static_cast<double>(rng() % 115))};
      insts.push_back(id);
    }
    for (int i = 0; i + 2 < numInsts; i += 3) {
      const NetId n = nl.addNet("n" + std::to_string(i));
      nl.connect(n, insts[static_cast<std::size_t>(i)], "Y");
      nl.connect(n, insts[static_cast<std::size_t>(i + 1)], "A");
      if (rng() % 2 == 0) nl.connect(n, insts[static_cast<std::size_t>(i + 2)], "A");
    }
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  Rect die{0, 0, umToDbu(120), umToDbu(120)};
};

void expectSegsIdentical(const NetRoute& a, const NetRoute& b, std::size_t n) {
  ASSERT_EQ(a.routed, b.routed) << "net " << n;
  ASSERT_EQ(a.segs.size(), b.segs.size()) << "net " << n;
  for (std::size_t s = 0; s < a.segs.size(); ++s) {
    ASSERT_TRUE(a.segs[s].isVia == b.segs[s].isVia && a.segs[s].layer == b.segs[s].layer &&
                a.segs[s].fromNode == b.segs[s].fromNode &&
                a.segs[s].toNode == b.segs[s].toNode)
        << "net " << n << " seg " << s;
  }
}

TEST(EcoRoute, IdentityEcoReusesEveryNetByteIdentically) {
  EcoProblem prob(makeTech28(6));
  RouteGrid gridA(prob.nl, prob.die, prob.tech.beol);
  const RoutingResult prev = routeDesign(prob.nl, gridA);
  ASSERT_EQ(prev.unroutedNets, 0);
  ASSERT_EQ(prev.totalOverflow, 0) << "identity-ECO premise: converged baseline";

  RouteGrid gridB(prob.nl, prob.die, prob.tech.beol);
  const RoutingResult eco = routeDesignEco(prob.nl, gridB, gridA, prev);
  EXPECT_EQ(eco.ecoDirtyGcells, 0);
  EXPECT_EQ(eco.ecoNetsRipped, 0);
  EXPECT_GT(eco.ecoNetsReused, 0);
  ASSERT_EQ(eco.nets.size(), prev.nets.size());
  for (std::size_t n = 0; n < prev.nets.size(); ++n) {
    expectSegsIdentical(prev.nets[n], eco.nets[n], n);
  }
  EXPECT_EQ(eco.totalWirelengthUm, prev.totalWirelengthUm);
  EXPECT_EQ(eco.totalOverflow, prev.totalOverflow);
  EXPECT_EQ(eco.f2fBumps, prev.f2fBumps);
}

/// Capacity-increase ECO on a single-die stack: shrinking the top metal's
/// pitch raises that layer's track capacity in every gcell. The changed
/// edges are dirty (the dirty-gcell census sees them) but none are
/// *violated* -- the previous usage still fits -- so the ECO must reuse
/// every single route byte-identically and match a full reroute's overflow.
TEST(EcoRoute, CapacityIncreaseEcoReusesEverything) {
  EcoProblem prob(makeTech28(6));
  RouteGrid gridA(prob.nl, prob.die, prob.tech.beol);
  const RoutingResult prev = routeDesign(prob.nl, gridA);
  ASSERT_EQ(prev.unroutedNets, 0);
  ASSERT_EQ(prev.totalOverflow, 0);

  Beol ecoBeol = prob.tech.beol;
  const int top = ecoBeol.numMetals() - 1;
  ecoBeol.metal(top).pitch = ecoBeol.metal(top).pitch / 2;  // double the tracks
  RouteGrid gridB(prob.nl, prob.die, ecoBeol);
  ASSERT_EQ(gridB.nx(), gridA.nx());
  ASSERT_EQ(gridB.numLayers(), gridA.numLayers());

  const RoutingResult eco = routeDesignEco(prob.nl, gridB, gridA, prev);
  EXPECT_GT(eco.ecoDirtyGcells, 0) << "the census must still see the changed layer";
  EXPECT_EQ(eco.ecoNetsRipped, 0) << "a capacity increase violates no edge";
  EXPECT_GT(eco.ecoNetsReused, 0);
  for (std::size_t n = 0; n < prev.nets.size(); ++n) {
    expectSegsIdentical(prev.nets[n], eco.nets[n], n);
  }

  // Overflow equivalence against a full reroute of the same new grid.
  RouteGrid gridFull(prob.nl, prob.die, ecoBeol);
  const RoutingResult full = routeDesign(prob.nl, gridFull);
  EXPECT_EQ(eco.totalOverflow, full.totalOverflow);
  EXPECT_EQ(eco.unroutedNets, full.unroutedNets);
}

/// Bump-pitch ECO on a combined F2F-bonded stack (the Macro-3D scenario):
/// the F2F cut capacity drops uniformly in every gcell, so a gcell-
/// granular rip rule would rip 100% of nets and a touch-any-changed-edge
/// rule would rip every bond crossing; the violation rule must rip only
/// the crossings whose bump site no longer fits (the 8 data-pin nets
/// funnel through a handful of gcells, and the new capacity is 1 cut per
/// gcell) while every logic-die net survives byte-identically.
TEST(EcoRoute, BumpPitchEcoOnCombinedStack) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  F2fViaSpec f2fA;
  const Beol beolA = buildCombinedBeol(logic.beol, macro.beol, f2fA);
  EcoProblem prob(logic);

  // A projected SRAM macro on the macro die: its pin nets MUST cross the
  // F2F bond layer, while the EcoProblem scatter nets stay on the logic die.
  SramSpec spec{.name = "MEM3D", .words = 1024, .bitsPerWord = 8};
  const CellType orig = makeSramMacro(spec, logic);
  const CellTypeId projId = prob.lib.addCell(projectToMacroDie(orig, logic));
  const InstId mem = prob.nl.addInstance("mem", projId);
  prob.nl.instance(mem).pos = Point{umToDbu(50), umToDbu(50)};
  prob.nl.instance(mem).fixed = true;
  prob.nl.instance(mem).die = DieId::kMacro;
  for (int k = 0; k < 8; ++k) {
    const InstId drv =
        prob.nl.addInstance("md" + std::to_string(k), prob.lib.findCell("INV_X1"));
    prob.nl.instance(drv).pos = Point{umToDbu(10.0 + 8 * k), umToDbu(10)};
    const NetId n = prob.nl.addNet("bond" + std::to_string(k));
    prob.nl.connect(n, drv, "Y");
    prob.nl.connect(n, mem, "D" + std::to_string(k));
  }

  RouteGrid gridA(prob.nl, prob.die, beolA);
  const RoutingResult prev = routeDesign(prob.nl, gridA);
  ASSERT_EQ(prev.unroutedNets, 0);
  ASSERT_EQ(prev.totalOverflow, 0);
  ASSERT_GT(prev.f2fBumps, 0) << "macro-pin nets must cross the bond layer";

  // Sparser bumps: 2.5x the pitch leaves exactly one F2F cut per gcell
  // (4um gcell / 2.5um pitch = 1.6 sites per side, squared and derated to
  // 1), so any bump site shared by two crossings is violated.
  F2fViaSpec f2fB = f2fA;
  f2fB.pitch = f2fA.pitch * 5 / 2;
  const Beol beolB = buildCombinedBeol(logic.beol, macro.beol, f2fB);
  RouteGrid gridB(prob.nl, prob.die, beolB);
  ASSERT_EQ(gridB.numLayers(), gridA.numLayers());

  const RoutingResult eco = routeDesignEco(prob.nl, gridB, gridA, prev);
  EXPECT_GT(eco.ecoDirtyGcells, 0);
  EXPECT_GT(eco.ecoNetsRipped, 0) << "overloaded bump sites must rip their crossings";
  EXPECT_GT(eco.ecoNetsReused, 0)
      << "nets that never cross the bond layer must survive a bump-pitch ECO";

  RouteGrid gridFull(prob.nl, prob.die, beolB);
  const RoutingResult full = routeDesign(prob.nl, gridFull);
  EXPECT_EQ(eco.totalOverflow, full.totalOverflow);
  EXPECT_EQ(eco.unroutedNets, full.unroutedNets);
  EXPECT_EQ(eco.f2fBumps, full.f2fBumps)
      << "every ripped bond-crossing renegotiates on the new bump budget";
}

TEST(EcoRoute, IncompatiblePreviousFallsBackToFullRoute) {
  EcoProblem prob(makeTech28(6));
  // Previous result from a *different die* -> different grid dims.
  const Rect smallDie{0, 0, umToDbu(60), umToDbu(60)};
  EcoProblem prevProb(makeTech28(6), 30, 777);
  RouteGrid prevGrid(prevProb.nl, smallDie, prevProb.tech.beol);
  const RoutingResult prev = routeDesign(prevProb.nl, prevGrid);

  RouteGrid gridEco(prob.nl, prob.die, prob.tech.beol);
  const RoutingResult eco = routeDesignEco(prob.nl, gridEco, prevGrid, prev);
  RouteGrid gridFull(prob.nl, prob.die, prob.tech.beol);
  const RoutingResult full = routeDesign(prob.nl, gridFull);

  // Fallback is a plain full route: bit-identical to routeDesign, no ECO stats.
  EXPECT_EQ(eco.ecoNetsReused, 0);
  EXPECT_EQ(eco.ecoNetsRipped, 0);
  ASSERT_EQ(eco.nets.size(), full.nets.size());
  for (std::size_t n = 0; n < full.nets.size(); ++n) {
    expectSegsIdentical(full.nets[n], eco.nets[n], n);
  }
  EXPECT_EQ(eco.totalOverflow, full.totalOverflow);
  EXPECT_EQ(eco.nodesPopped, full.nodesPopped);
}

// ---------------------------------------------------------------------------
// Flow level: ecoRouteFrom seeding through runPnrPipeline (slow label via
// the Flow* test filter).

TileConfig ecoTinyConfig() {
  TileConfig cfg;
  cfg.name = "eco-tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

TileConfig ecoTinyConfigB() {
  TileConfig cfg = ecoTinyConfig();
  cfg.name = "eco-tiny-b";
  cfg.coreGates = 420;
  cfg.nocGates = 80;
  return cfg;
}

/// Finds the deepest stage checkpoint the baseline run wrote.
std::string deepestCheckpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::string best;
  int bestStage = -1;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("stage", 0) != 0) continue;
    const int stage = name[5] - '0';
    if (stage > bestStage) {
      bestStage = stage;
      best = entry.path().string();
    }
  }
  return best;
}

void runBumpPitchEcoFlow(const TileConfig& cfg) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / ("m3d_eco_flow_" + cfg.name)).string();
  fs::remove_all(dir);

  FlowOptions base;
  base.maxFreqRounds = 2;
  base.optBase.maxPasses = 6;
  base.checkpointDir = dir;
  const FlowOutput baseline = runFlowMacro3D(cfg, base);
  ASSERT_EQ(baseline.metrics.unroutedNets, 0);
  const std::string seed = deepestCheckpoint(dir);
  ASSERT_FALSE(seed.empty()) << "baseline run wrote no checkpoint under " << dir;

  // Bump-pitch ECO: same die/placement, only the F2F via pitch changes, so
  // the grid dims survive and the route stage can reroute incrementally.
  // The pitch shrinks (denser bumps, more F2F capacity) so the change can
  // only relieve the bond layer, never add pressure.
  FlowOptions ecoOpt = base;
  ecoOpt.checkpointDir.clear();  // no cache: the route must actually run
  ecoOpt.ecoRouteFrom = seed;
  ecoOpt.f2fVia.pitch = base.f2fVia.pitch / 2;
  const FlowOutput eco = runFlowMacro3D(cfg, ecoOpt);

  FlowOptions coldOpt = ecoOpt;
  coldOpt.ecoRouteFrom.clear();
  const FlowOutput cold = runFlowMacro3D(cfg, coldOpt);

  // Incremental: densifying the bumps only ever raises the F2F capacity,
  // so the capacity rule rips nothing here. The rips that DO happen come
  // from the pin rule: the seed is the signoff checkpoint, whose cells
  // were resized and re-legalized after the seed's own route stage, so a
  // fraction of pins sit one gcell off the checkpointed routes. The
  // contract is therefore reuse of the undrifted majority, not a fixed
  // bound (the <30% bump-pitch acceptance bar is measured in
  // bench_route's ECO scenario, which reroutes the same placement).
  EXPECT_GT(eco.routes.ecoNetsReused, 0);
  const double total =
      static_cast<double>(eco.routes.ecoNetsReused + eco.routes.ecoNetsRipped);
  ASSERT_GT(total, 0.0);
  const double rippedFrac = static_cast<double>(eco.routes.ecoNetsRipped) / total;
  EXPECT_LT(rippedFrac, 1.0) << "a whole-design rip defeats incremental ECO";

  // ...reused routes byte-identically (against the seed checkpoint)...
  FlowOutput prevOut;
  ASSERT_TRUE(loadFlowCheckpoint(seed, prevOut).ok());
  ASSERT_EQ(prevOut.routes.nets.size(), eco.routes.nets.size());
  std::int64_t identical = 0;
  for (std::size_t n = 0; n < eco.routes.nets.size(); ++n) {
    const NetRoute& a = prevOut.routes.nets[n];
    const NetRoute& b = eco.routes.nets[n];
    if (a.routed != b.routed || a.segs.size() != b.segs.size()) continue;
    bool same = true;
    for (std::size_t s = 0; s < a.segs.size(); ++s) {
      if (!(a.segs[s].isVia == b.segs[s].isVia && a.segs[s].layer == b.segs[s].layer &&
            a.segs[s].fromNode == b.segs[s].fromNode && a.segs[s].toNode == b.segs[s].toNode)) {
        same = false;
        break;
      }
    }
    if (same) ++identical;
  }
  EXPECT_GE(identical, eco.routes.ecoNetsReused);

  // ...and stays signoff-clean, exactly like the cold reroute. Exact
  // overflow equality between the incremental and the cold negotiation is
  // guaranteed only when both converge (the router-level EcoRoute tests
  // assert it on congestion-free problems); the macro-dominated tiny tile
  // has structural macro-die congestion, so here the contract is the
  // signoff verdict plus convergence-conditional equality.
  EXPECT_EQ(eco.metrics.unroutedNets, 0);
  EXPECT_EQ(cold.metrics.unroutedNets, 0);
  EXPECT_TRUE(eco.verify.clean()) << eco.verify.summaryText();
  EXPECT_TRUE(cold.verify.clean()) << cold.verify.summaryText();
  if (cold.routes.totalOverflow == 0) {
    EXPECT_EQ(eco.routes.totalOverflow, 0);
  }

  // The seeded route path is itself deterministic: a second ECO run off the
  // same checkpoint reproduces the routes bit for bit.
  const FlowOutput eco2 = runFlowMacro3D(cfg, ecoOpt);
  ASSERT_EQ(eco2.routes.nets.size(), eco.routes.nets.size());
  EXPECT_EQ(eco2.routes.ecoNetsRipped, eco.routes.ecoNetsRipped);
  EXPECT_EQ(eco2.routes.ecoNetsReused, eco.routes.ecoNetsReused);
  EXPECT_EQ(eco2.routes.totalOverflow, eco.routes.totalOverflow);
  EXPECT_EQ(eco2.routes.nodesPopped, eco.routes.nodesPopped);
  for (std::size_t n = 0; n < eco.routes.nets.size(); ++n) {
    ASSERT_EQ(eco.routes.nets[n].segs.size(), eco2.routes.nets[n].segs.size())
        << "net " << n;
  }

  fs::remove_all(dir);
}

TEST(FlowEcoReroute, BumpPitchIncrementalSignoffCleanTileA) {
  runBumpPitchEcoFlow(ecoTinyConfig());
}

TEST(FlowEcoReroute, BumpPitchIncrementalSignoffCleanTileB) {
  runBumpPitchEcoFlow(ecoTinyConfigB());
}

/// Macro-resize ECO: the placement (and often the die) changes under the
/// seed, so the route stage either falls back to a full route (grid dims
/// changed) or rips every net whose pins moved. Either way the contract is
/// graceful degradation, not QoR equality -- renegotiating from a partial
/// usage state is a different (still deterministic) algorithm than a cold
/// negotiation, so overflow may legitimately differ. The run must stay
/// signoff-clean and route everything, exactly like the cold run.
TEST(FlowEcoReroute, MacroResizeEcoStaysCleanAndRoutesEverything) {
  namespace fs = std::filesystem;
  const std::string dir = (fs::temp_directory_path() / "m3d_eco_flow_resize").string();
  fs::remove_all(dir);

  FlowOptions base;
  base.maxFreqRounds = 2;
  base.optBase.maxPasses = 6;
  base.checkpointDir = dir;
  (void)runFlowMacro3D(ecoTinyConfig(), base);
  const std::string seed = deepestCheckpoint(dir);
  ASSERT_FALSE(seed.empty());

  TileConfig resized = ecoTinyConfig();
  resized.bitcellUm2 *= 1.1;

  FlowOptions ecoOpt = base;
  ecoOpt.checkpointDir.clear();
  ecoOpt.ecoRouteFrom = seed;
  const FlowOutput eco = runFlowMacro3D(resized, ecoOpt);

  FlowOptions coldOpt = ecoOpt;
  coldOpt.ecoRouteFrom.clear();
  const FlowOutput cold = runFlowMacro3D(resized, coldOpt);

  EXPECT_EQ(eco.routes.unroutedNets, 0);
  EXPECT_EQ(eco.metrics.unroutedNets, cold.metrics.unroutedNets);
  EXPECT_TRUE(eco.verify.clean()) << eco.verify.summaryText();
  EXPECT_TRUE(cold.verify.clean()) << cold.verify.summaryText();

  fs::remove_all(dir);
}

}  // namespace
}  // namespace m3d
