#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "extract/extraction.hpp"
#include "floorplan/floorplan.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

/// Randomized property tests (fixed seeds, fully deterministic):
///  - Router capacity accounting: usage recomputed from the committed route
///    segments must reproduce every reported metric (wirelength per layer,
///    via counts, overflow) -- i.e. rip-up/reroute never leaks usage.
///  - STA arrivals on random logic DAGs must match a naive fixpoint
///    reference implementation edge for edge.

namespace m3d {
namespace {

// ---------------------------------------------------------------------------
// Router capacity accounting

/// Random mix of 2- to 4-pin INV nets scattered over a square die.
struct RandomRouteProblem {
  RandomRouteProblem(std::uint64_t seed, int numInsts, double dieUm)
      : tech(makeTech28(6)),
        lib(makeStdCellLib(tech)),
        nl(&lib),
        die{0, 0, umToDbu(dieUm), umToDbu(dieUm)} {
    std::mt19937_64 rng(seed);
    const std::uint64_t span = static_cast<std::uint64_t>(dieUm) - 4;
    std::vector<InstId> insts;
    for (int i = 0; i < numInsts; ++i) {
      const InstId id = nl.addInstance("g" + std::to_string(i), lib.findCell("INV_X1"));
      nl.instance(id).pos = Point{umToDbu(2.0 + static_cast<double>(rng() % span)),
                                  umToDbu(2.0 + static_cast<double>(rng() % span))};
      insts.push_back(id);
    }
    std::vector<int> sinks(static_cast<std::size_t>(numInsts));
    for (int i = 0; i < numInsts; ++i) sinks[static_cast<std::size_t>(i)] = i;
    for (int i = numInsts - 1; i > 0; --i) {
      const int j = static_cast<int>(rng() % static_cast<std::uint64_t>(i + 1));
      std::swap(sinks[static_cast<std::size_t>(i)], sinks[static_cast<std::size_t>(j)]);
    }
    std::size_t p = 0;
    for (int i = 0; i < numInsts && p < sinks.size(); ++i) {
      const int want = 1 + static_cast<int>(rng() % 3);
      const NetId n = nl.addNet("n" + std::to_string(i));
      nl.connect(n, insts[static_cast<std::size_t>(i)], "Y");
      int got = 0;
      while (got < want && p < sinks.size()) {
        const int s = sinks[p++];
        if (s == i) continue;
        nl.connect(n, insts[static_cast<std::size_t>(s)], "A");
        ++got;
      }
    }
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  Rect die;
};

/// Recomputes every RoutingResult metric from the committed segments alone
/// and checks them against what the router reported.
void checkRouterAccounting(const RoutingResult& r, const RouteGrid& grid, const Netlist& nl) {
  std::vector<int> wireUse(static_cast<std::size_t>(grid.numWireEdges()), 0);
  std::vector<int> viaUse(static_cast<std::size_t>(grid.numViaEdges()), 0);
  std::vector<double> wlPerLayer(static_cast<std::size_t>(grid.numLayers()), 0.0);
  std::vector<std::int64_t> viasPerCut(static_cast<std::size_t>(grid.numLayers() - 1), 0);
  double totalWl = 0.0;
  std::int64_t f2f = 0;
  std::int64_t totalSegs = 0;
  const double g = grid.gcellUm();

  for (const NetRoute& net : r.nets) {
    totalSegs += static_cast<std::int64_t>(net.segs.size());
    for (const RouteSeg& s : net.segs) {
      const int lf = grid.nodeLayer(s.fromNode);
      const int lt = grid.nodeLayer(s.toNode);
      if (s.isVia) {
        // Geometry invariant: vertical hop between adjacent layers, keyed
        // by the lower one.
        ASSERT_EQ(grid.nodeX(s.fromNode), grid.nodeX(s.toNode));
        ASSERT_EQ(grid.nodeY(s.fromNode), grid.nodeY(s.toNode));
        ASSERT_EQ(std::abs(lf - lt), 1);
        ASSERT_EQ(s.layer, std::min(lf, lt));
        const int v = grid.viaEdgeId(grid.nodeX(s.fromNode), grid.nodeY(s.fromNode), s.layer);
        ++viaUse[static_cast<std::size_t>(v)];
        ++viasPerCut[static_cast<std::size_t>(s.layer)];
        if (grid.viaIsF2f(s.layer)) ++f2f;
      } else {
        // Geometry invariant: one-gcell hop along the layer's direction.
        ASSERT_EQ(lf, s.layer);
        ASSERT_EQ(lt, s.layer);
        const int dx = std::abs(grid.nodeX(s.fromNode) - grid.nodeX(s.toNode));
        const int dy = std::abs(grid.nodeY(s.fromNode) - grid.nodeY(s.toNode));
        if (grid.layerHorizontal(s.layer)) {
          ASSERT_EQ(dx, 1);
          ASSERT_EQ(dy, 0);
        } else {
          ASSERT_EQ(dx, 0);
          ASSERT_EQ(dy, 1);
        }
        const int e = std::min(s.fromNode, s.toNode);  // edge id == low-end node id
        ++wireUse[static_cast<std::size_t>(e)];
        wlPerLayer[static_cast<std::size_t>(s.layer)] += g;
        totalWl += g;
      }
    }
  }

  // Usage conservation: every committed segment accounts for exactly one
  // unit of edge usage, so the recomputed totals must match the report.
  std::int64_t usageSum = 0;
  for (const int u : wireUse) usageSum += u;
  for (const int u : viaUse) usageSum += u;
  EXPECT_EQ(usageSum, totalSegs);

  int overflowedEdges = 0;
  std::int64_t totalOverflow = 0;
  for (int e = 0; e < grid.numWireEdges(); ++e) {
    const int over = wireUse[static_cast<std::size_t>(e)] - static_cast<int>(grid.wireCap(e));
    if (over > 0) {
      ++overflowedEdges;
      totalOverflow += over;
    }
  }
  for (int v = 0; v < grid.numViaEdges(); ++v) {
    const int over = viaUse[static_cast<std::size_t>(v)] - static_cast<int>(grid.viaCap(v));
    if (over > 0) {
      ++overflowedEdges;
      totalOverflow += over;
    }
  }

  int unrouted = 0;
  for (NetId n = 0; n < nl.numNets(); ++n) {
    if (nl.net(n).pins.size() >= 2 && !r.nets[static_cast<std::size_t>(n)].routed) ++unrouted;
  }

  EXPECT_EQ(r.overflowedEdges, overflowedEdges);
  EXPECT_EQ(r.totalOverflow, totalOverflow);
  EXPECT_EQ(r.unroutedNets, unrouted);
  EXPECT_EQ(r.f2fBumps, f2f);
  ASSERT_EQ(r.viasPerCut.size(), viasPerCut.size());
  for (std::size_t c = 0; c < viasPerCut.size(); ++c) {
    EXPECT_EQ(r.viasPerCut[c], viasPerCut[c]) << "cut " << c;
  }
  ASSERT_EQ(r.wirelengthPerLayerUm.size(), wlPerLayer.size());
  for (std::size_t l = 0; l < wlPerLayer.size(); ++l) {
    EXPECT_DOUBLE_EQ(r.wirelengthPerLayerUm[l], wlPerLayer[l]) << "layer " << l;
  }
  EXPECT_DOUBLE_EQ(r.totalWirelengthUm, totalWl);
}

TEST(RouterProperty, CapacityAccountingMatchesCommittedSegments) {
  struct Cfg {
    std::uint64_t seed;
    int insts;
    double dieUm;
  };
  // The 48um die overloads the grid on purpose: accounting must hold even
  // when rip-up/reroute runs out of iterations with overflow left.
  const Cfg cfgs[] = {{7, 80, 100.0}, {41, 120, 100.0}, {97, 100, 48.0}};
  for (const Cfg& cfg : cfgs) {
    SCOPED_TRACE("seed=" + std::to_string(cfg.seed));
    RandomRouteProblem p(cfg.seed, cfg.insts, cfg.dieUm);
    RouteGrid grid(p.nl, p.die, p.tech.beol);
    const RoutingResult r = routeDesign(p.nl, grid);
    checkRouterAccounting(r, grid, p.nl);
  }
}

TEST(RouterProperty, AccountingHoldsAtAnyBatchSizeAndThreadCount) {
  RandomRouteProblem p(13, 90, 80.0);
  for (const int batch : {1, 5, 24}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE("batch=" + std::to_string(batch) + " threads=" + std::to_string(threads));
      RouteGrid grid(p.nl, p.die, p.tech.beol);
      RouterOptions opt;
      opt.batchSize = batch;
      opt.numThreads = threads;
      const RoutingResult r = routeDesign(p.nl, grid, opt);
      checkRouterAccounting(r, grid, p.nl);
    }
  }
}

// ---------------------------------------------------------------------------
// STA vs naive reference

constexpr double kNoArrival = -1e30;

/// Naive fixpoint max-arrival reference: repeatedly relaxes every timing
/// edge until nothing changes. Independent of the Sta implementation's
/// topological order, levelization, and parallel sweep; uses the identical
/// floating-point delay expressions so results must match bitwise.
struct RefSta {
  const Netlist& nl;
  const std::vector<NetParasitics>& paras;
  std::vector<int> instPinBase;
  int portBase = 0;
  int numPins = 0;

  struct Edge {
    int u;
    int v;
    double delay;
  };
  std::vector<Edge> edges;
  struct Launch {
    int toPin;
    double delay;
  };
  std::vector<Launch> launches;

  RefSta(const Netlist& netlist, const std::vector<NetParasitics>& p) : nl(netlist), paras(p) {
    instPinBase.resize(static_cast<std::size_t>(nl.numInstances()));
    int next = 0;
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      instPinBase[static_cast<std::size_t>(i)] = next;
      next += static_cast<int>(nl.cellOf(i).pins.size());
    }
    portBase = next;
    numPins = next + nl.numPorts();

    for (NetId n = 0; n < nl.numNets(); ++n) {
      const Net& net = nl.net(n);
      if (net.driverIdx < 0) continue;
      const int u = pid(net.pins[static_cast<std::size_t>(net.driverIdx)]);
      for (int k = 0; k < static_cast<int>(net.pins.size()); ++k) {
        if (k == net.driverIdx) continue;
        edges.push_back({u, pid(net.pins[static_cast<std::size_t>(k)]),
                         paras[static_cast<std::size_t>(n)].sinkWireDelay[static_cast<std::size_t>(k)]});
      }
    }
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      const CellType& c = nl.cellOf(i);
      const int base = instPinBase[static_cast<std::size_t>(i)];
      for (const TimingArc& a : c.arcs) {
        const NetId outNet = nl.instance(i).pinNets[static_cast<std::size_t>(a.toPin)];
        const double load =
            outNet != kInvalidId ? paras[static_cast<std::size_t>(outNet)].totalLoad() : 0.0;
        const double delay = a.intrinsic + a.driveRes * load;
        if (c.pins[static_cast<std::size_t>(a.fromPin)].isClock) {
          if (outNet != kInvalidId) launches.push_back({base + a.toPin, delay});
        } else {
          edges.push_back({base + a.fromPin, base + a.toPin, delay});
        }
      }
    }
  }

  int pid(const NetPin& p) const {
    if (p.kind == NetPin::Kind::kPort) return portBase + p.port;
    return instPinBase[static_cast<std::size_t>(p.inst)] + p.libPin;
  }

  std::vector<double> arrivals(double period) const {
    std::vector<double> arr(static_cast<std::size_t>(numPins), kNoArrival);
    for (PortId p = 0; p < nl.numPorts(); ++p) {
      const Port& port = nl.port(p);
      if (port.dir != PinDir::kInput || port.isClock) continue;
      arr[static_cast<std::size_t>(portBase + p)] = port.halfCycle ? period / 2.0 : 0.0;
    }
    for (const Launch& l : launches) {
      arr[static_cast<std::size_t>(l.toPin)] =
          std::max(arr[static_cast<std::size_t>(l.toPin)], l.delay);
    }
    // Fixpoint relaxation; a DAG settles in at most depth() rounds.
    for (int round = 0; round < numPins; ++round) {
      bool changed = false;
      for (const Edge& e : edges) {
        const double au = arr[static_cast<std::size_t>(e.u)];
        if (au <= kNoArrival) continue;
        const double cand = au + e.delay;
        if (cand > arr[static_cast<std::size_t>(e.v)]) {
          arr[static_cast<std::size_t>(e.v)] = cand;
          changed = true;
        }
      }
      if (!changed) break;
    }
    return arr;
  }

  double worstSlack(double period, const std::vector<double>& arr) const {
    double wns = std::numeric_limits<double>::infinity();
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      const CellType& c = nl.cellOf(i);
      if (!c.isSequential() && !c.isMacro()) continue;
      const int base = instPinBase[static_cast<std::size_t>(i)];
      for (int p = 0; p < static_cast<int>(c.pins.size()); ++p) {
        const LibPin& lp = c.pins[static_cast<std::size_t>(p)];
        if (lp.dir != PinDir::kInput || lp.isClock) continue;
        const double a = arr[static_cast<std::size_t>(base + p)];
        if (a <= kNoArrival) continue;
        wns = std::min(wns, (period - c.setup) - a);
      }
    }
    for (PortId p = 0; p < nl.numPorts(); ++p) {
      const Port& port = nl.port(p);
      if (port.dir != PinDir::kOutput) continue;
      const double a = arr[static_cast<std::size_t>(portBase + p)];
      if (a <= kNoArrival) continue;
      wns = std::min(wns, (port.halfCycle ? period / 2.0 : period) - a);
    }
    return wns == std::numeric_limits<double>::infinity() ? 0.0 : wns;
  }
};

/// Random registered cloud with data ports and estimated wire parasitics.
struct RandomStaProblem {
  RandomStaProblem(std::uint64_t seed, int gates, int regs, bool halfCycleIn)
      : tech(makeTech28(6)), lib(makeStdCellLib(tech)), nl(&lib) {
    const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, true);
    const NetId clk = nl.addNet("clk");
    nl.connectPort(clk, clkPort);
    const PortId in = nl.addPort("in", PinDir::kInput, Side::kWest);
    const NetId nIn = nl.addNet("n_in");
    nl.connectPort(nIn, in);
    const PortId out = nl.addPort("out", PinDir::kOutput, Side::kEast);
    const NetId nOut = nl.addNet("n_out");
    nl.connectPort(nOut, out);
    nl.port(in).halfCycle = halfCycleIn;

    Rng rng(seed);
    CloudSpec spec;
    spec.prefix = "p";
    spec.numGates = gates;
    spec.numRegs = regs;
    spec.clockNet = clk;
    spec.consumeNets = {nIn};
    spec.driveNets = {nOut};
    buildLogicCloud(nl, rng, spec);

    const Rect die{0, 0, umToDbu(80), umToDbu(80)};
    assignPorts(nl, die);
    std::mt19937_64 prng(seed + 1);
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      nl.instance(i).pos = Point{static_cast<Dbu>(prng() % static_cast<std::uint64_t>(die.xhi)),
                                 static_cast<Dbu>(prng() % static_cast<std::uint64_t>(die.yhi))};
    }
    paras = estimateDesign(nl, EstimationOptions{});
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  std::vector<NetParasitics> paras;
};

TEST(StaProperty, RandomDagArrivalsMatchNaiveReference) {
  struct Cfg {
    std::uint64_t seed;
    int gates;
    int regs;
    bool halfCycleIn;
  };
  const Cfg cfgs[] = {{5, 300, 60, false}, {17, 500, 90, true}, {101, 150, 30, false}};
  const double period = 1.2e-9;
  for (const Cfg& cfg : cfgs) {
    SCOPED_TRACE("seed=" + std::to_string(cfg.seed));
    RandomStaProblem p(cfg.seed, cfg.gates, cfg.regs, cfg.halfCycleIn);
    const RefSta ref(p.nl, p.paras);
    const std::vector<double> refArr = ref.arrivals(period);

    const Sta sta(p.nl, p.paras, nullptr, kTypicalCorner, 8);
    const std::vector<double> ports = sta.portArrivals(period);
    ASSERT_EQ(static_cast<int>(ports.size()), p.nl.numPorts());
    for (PortId q = 0; q < p.nl.numPorts(); ++q) {
      EXPECT_DOUBLE_EQ(ports[static_cast<std::size_t>(q)],
                       refArr[static_cast<std::size_t>(ref.portBase + q)])
          << "port " << p.nl.port(q).name;
    }
    EXPECT_DOUBLE_EQ(sta.worstSlack(period), ref.worstSlack(period, refArr));
  }
}

TEST(StaProperty, WorstSlackShiftsExactlyWithPeriodOnRegPaths) {
  // With an ideal clock, every reg->reg endpoint's slack is (T - setup) - a
  // where the arrival a is period-independent; if a reg endpoint stays
  // critical, dT of period change moves WNS by exactly dT.
  RandomStaProblem p(23, 400, 80, false);
  const Sta sta(p.nl, p.paras, nullptr, kTypicalCorner, 8);
  const RefSta ref(p.nl, p.paras);
  // Pick periods small enough that the (period-scaled) port paths are never
  // the worst: reg paths dominate at tight periods.
  const double t1 = 0.4e-9;
  const double t2 = 0.5e-9;
  const double s1 = sta.worstSlack(t1);
  const double s2 = sta.worstSlack(t2);
  EXPECT_DOUBLE_EQ(s1, ref.worstSlack(t1, ref.arrivals(t1)));
  EXPECT_DOUBLE_EQ(s2, ref.worstSlack(t2, ref.arrivals(t2)));
  if (s1 < -0.05e-9) {  // deep reg-path violation at both periods
    EXPECT_NEAR(s2 - s1, t2 - t1, 1e-15);
  }
}

}  // namespace
}  // namespace m3d
