#include <gtest/gtest.h>

#include <random>

#include "flows/flow_common.hpp"
#include "floorplan/floorplan.hpp"
#include "lib/sram_generator.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

TEST(Floorplan, SnapUp) {
  EXPECT_EQ(snapUp(0, 200), 0);
  EXPECT_EQ(snapUp(1, 200), 200);
  EXPECT_EQ(snapUp(200, 200), 200);
  EXPECT_EQ(snapUp(201, 200), 400);
}

TEST(Floorplan, DieSizing2DAnd3D) {
  const TechNode tech = makeTech28(6);
  NetlistStats stats;
  stats.stdCellArea = umToDbu(100) * umToDbu(120);   // 12000 um^2
  stats.macroArea = umToDbu(160) * umToDbu(160);     // 25600 um^2
  const Rect d2 = computeDie2D(stats, tech);
  EXPECT_FALSE(d2.isEmpty());
  // Area covers every packing constraint.
  EXPECT_GE(static_cast<double>(d2.area()),
            static_cast<double>(stats.stdCellArea + stats.macroArea) / 0.70);
  EXPECT_GE(static_cast<double>(d2.area()), 2.0 * static_cast<double>(stats.macroArea) / 0.80);
  // Grid-snapped.
  EXPECT_EQ(d2.width() % tech.siteWidth, 0);
  EXPECT_EQ(d2.height() % tech.rowHeight, 0);

  const Rect d3 = computeDie3D(d2, tech);
  const double ratio = static_cast<double>(d2.area()) / static_cast<double>(d3.area());
  EXPECT_NEAR(ratio, 2.0, 0.05);  // paper: 2x footprint ratio
}

/// Builds a netlist holding only macros of the given sizes.
struct MacroFixture {
  MacroFixture() : tech(makeTech28(6)), lib(makeStdCellLib(tech)), nl(&lib) {}

  std::vector<InstId> makeMacros(const std::vector<std::pair<int, int>>& wordsBits) {
    std::vector<InstId> out;
    int i = 0;
    for (const auto& [words, bits] : wordsBits) {
      SramSpec spec;
      spec.name = "SR_" + std::to_string(i);
      spec.words = words;
      spec.bitsPerWord = bits;
      const CellTypeId id = lib.addCell(makeSramMacro(spec, tech));
      out.push_back(nl.addInstance("m" + std::to_string(i), id));
      ++i;
    }
    return out;
  }

  TechNode tech;
  Library lib;
  Netlist nl;
};

class MacroPackers : public ::testing::TestWithParam<int> {};

TEST_P(MacroPackers, RingShelfBalancedProduceLegalPlacements) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  MacroFixture f;
  std::vector<std::pair<int, int>> sizes;
  std::int64_t totalArea = 0;
  for (int i = 0; i < 14; ++i) {
    sizes.push_back({256 << (rng() % 4), 32});
  }
  const auto macros = f.makeMacros(sizes);
  for (InstId m : macros) totalArea += f.nl.cellOf(m).boundingArea();

  // Generous die: 2.2x the macro area.
  const Dbu side = snapUp(
      static_cast<Dbu>(std::sqrt(static_cast<double>(totalArea) * 2.2)), f.tech.rowHeight);
  const Rect die{0, 0, side, side};
  const Dbu halo = umToDbu(1.0);

  ASSERT_TRUE(placeMacrosRing(f.nl, macros, die, halo));
  EXPECT_EQ(checkMacroPlacement(f.nl, DieId::kLogic, die), "");

  ASSERT_TRUE(placeMacrosShelf(f.nl, macros, die, halo, DieId::kMacro));
  EXPECT_EQ(checkMacroPlacement(f.nl, DieId::kMacro, die), "");

  ASSERT_TRUE(placeMacrosBalanced(f.nl, macros, die, halo));
  EXPECT_EQ(checkMacroPlacement(f.nl, DieId::kMacro, die), "");
  EXPECT_EQ(checkMacroPlacement(f.nl, DieId::kLogic, die), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacroPackers, ::testing::Values(1, 2, 3, 4, 5));

TEST(MacroPackers, BalancedPairsOverlapAcrossDies) {
  MacroFixture f;
  const auto macros = f.makeMacros({{1024, 32}, {1024, 32}, {512, 32}, {512, 32}});
  const Rect die{0, 0, umToDbu(400), snapUp(umToDbu(400), f.tech.rowHeight)};
  ASSERT_TRUE(placeMacrosBalanced(f.nl, macros, die, umToDbu(1)));
  // Each pair: same position, different dies (full-blockage overlap).
  int macroDie = 0;
  int logicDie = 0;
  for (InstId m : macros) {
    (f.nl.instance(m).die == DieId::kMacro ? macroDie : logicDie)++;
  }
  EXPECT_EQ(macroDie, 2);
  EXPECT_EQ(logicDie, 2);
}

TEST(MacroPackers, ShelfFailsWhenDieTooSmall) {
  MacroFixture f;
  const auto macros = f.makeMacros({{8192, 32}, {8192, 32}, {8192, 32}});
  const Rect die{0, 0, umToDbu(40), snapUp(umToDbu(40), f.tech.rowHeight)};
  EXPECT_FALSE(placeMacrosShelf(f.nl, macros, die, umToDbu(1), DieId::kMacro));
}

TEST(Floorplan, BlockagesFromMacros) {
  MacroFixture f;
  const auto macros = f.makeMacros({{1024, 32}, {2048, 32}});
  const Rect die{0, 0, umToDbu(500), snapUp(umToDbu(500), f.tech.rowHeight)};
  ASSERT_TRUE(placeMacrosShelf(f.nl, macros, die, umToDbu(1), DieId::kMacro));
  const auto none = macroPlacementBlockages(f.nl, DieId::kLogic, 0);
  EXPECT_TRUE(none.empty());
  const auto blocks = macroPlacementBlockages(f.nl, DieId::kMacro, umToDbu(0.5));
  ASSERT_EQ(blocks.size(), 2u);
  for (const auto& b : blocks) {
    EXPECT_DOUBLE_EQ(b.density, 1.0);
    EXPECT_GT(b.rect.area(), 0);
  }
}

TEST(Floorplan, PortAlignmentConstraints) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  // Two NS pairs, one EW pair, plus unpaired ports.
  const PortId nOut = nl.addPort("n_out", PinDir::kOutput, Side::kNorth);
  const PortId sIn = nl.addPort("s_in", PinDir::kInput, Side::kSouth);
  nl.port(nOut).pairTag = 0;
  nl.port(sIn).pairTag = 0;
  const PortId sOut = nl.addPort("s_out", PinDir::kOutput, Side::kSouth);
  const PortId nIn = nl.addPort("n_in", PinDir::kInput, Side::kNorth);
  nl.port(sOut).pairTag = 1;
  nl.port(nIn).pairTag = 1;
  const PortId eOut = nl.addPort("e_out", PinDir::kOutput, Side::kEast);
  const PortId wIn = nl.addPort("w_in", PinDir::kInput, Side::kWest);
  nl.port(eOut).pairTag = 2;
  nl.port(wIn).pairTag = 2;
  const PortId clk = nl.addPort("clk", PinDir::kInput, Side::kWest, true);

  const Rect die{0, 0, umToDbu(100), umToDbu(100)};
  assignPorts(nl, die);

  // Paired N/S ports share x; paired E/W ports share y (paper Sec. V-1).
  EXPECT_EQ(nl.port(nOut).pos.x, nl.port(sIn).pos.x);
  EXPECT_EQ(nl.port(sOut).pos.x, nl.port(nIn).pos.x);
  EXPECT_EQ(nl.port(eOut).pos.y, nl.port(wIn).pos.y);
  // Sides map to die edges.
  EXPECT_EQ(nl.port(nOut).pos.y, die.yhi);
  EXPECT_EQ(nl.port(sIn).pos.y, die.ylo);
  EXPECT_EQ(nl.port(eOut).pos.x, die.xhi);
  EXPECT_EQ(nl.port(clk).pos.x, die.xlo);
  // Distinct pairs get distinct coordinates.
  EXPECT_NE(nl.port(nOut).pos.x, nl.port(sOut).pos.x);
}

TEST(Floorplan, CompositeBlockagesMergeOverlaps) {
  const Rect die{0, 0, umToDbu(100), umToDbu(100)};
  const Rect a{umToDbu(10), umToDbu(10), umToDbu(50), umToDbu(50)};
  const Rect b = a;  // exact overlap -> density 1.0
  const auto blocks = compositeBlockages({a, b}, die, umToDbu(5), 0.5);
  ASSERT_FALSE(blocks.empty());
  double maxDensity = 0.0;
  for (const auto& blk : blocks) maxDensity = std::max(maxDensity, blk.density);
  EXPECT_DOUBLE_EQ(maxDensity, 1.0);

  // Single rect -> density 0.5 in the covered cells.
  const auto single = compositeBlockages({a}, die, umToDbu(5), 0.5);
  for (const auto& blk : single) {
    EXPECT_LE(blk.density, 0.5 + 1e-9);
  }
  // Total blocked area (density-weighted) approximates 0.5 * rect area.
  double blocked = 0.0;
  for (const auto& blk : single) blocked += blk.density * static_cast<double>(blk.rect.area());
  EXPECT_NEAR(blocked / static_cast<double>(a.area()), 0.5, 0.1);
}

TEST(Floorplan, NumRows) {
  Floorplan fp;
  fp.die = Rect{0, 0, umToDbu(10), umToDbu(12)};
  fp.rowHeight = umToDbu(1.2);
  fp.siteWidth = umToDbu(0.2);
  EXPECT_EQ(fp.numRows(), 10);
}

}  // namespace
}  // namespace m3d
