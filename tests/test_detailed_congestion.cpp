#include <gtest/gtest.h>

#include <random>

#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "place/detailed.hpp"
#include "place/legalizer.hpp"
#include "place/placer.hpp"
#include "report/congestion.hpp"
#include "route/router.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class DetailedFixture : public ::testing::Test {
 protected:
  DetailedFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {
    const NetId clk = nl_.addNet("clk");
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    nl_.connectPort(clk, clkPort);
    Rng rng(21);
    CloudSpec spec;
    spec.prefix = "d";
    spec.numGates = 500;
    spec.numRegs = 100;
    spec.clockNet = clk;
    buildLogicCloud(nl_, rng, spec);

    fp_.die = Rect{0, 0, snapUp(umToDbu(70), tech_.siteWidth), snapUp(umToDbu(70), tech_.rowHeight)};
    fp_.rowHeight = tech_.rowHeight;
    fp_.siteWidth = tech_.siteWidth;
    assignPorts(nl_, fp_.die);
    globalPlace(nl_, fp_);
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Floorplan fp_;
};

TEST_F(DetailedFixture, ReducesHpwlAndStaysLegal) {
  ASSERT_EQ(checkLegality(nl_, fp_), "");
  const DetailedPlaceResult r = detailedPlace(nl_, fp_);
  EXPECT_LE(r.hpwlAfterUm, r.hpwlBeforeUm);
  EXPECT_GT(r.swapsAccepted + r.slidesAccepted, 0);
  EXPECT_EQ(checkLegality(nl_, fp_), "");
  EXPECT_TRUE(nl_.validate().empty());
}

TEST_F(DetailedFixture, IdempotentOnceConverged) {
  detailedPlace(nl_, fp_, DetailedPlaceOptions{.maxPasses = 6});
  const DetailedPlaceResult second = detailedPlace(nl_, fp_, DetailedPlaceOptions{.maxPasses = 1});
  // A converged placement admits (almost) no further strictly-improving
  // moves; HPWL must not increase.
  EXPECT_LE(second.hpwlAfterUm, second.hpwlBeforeUm + 1e-9);
}

TEST_F(DetailedFixture, RoutedTreesValidate) {
  RouteGrid grid(nl_, fp_.die, tech_.beol);
  const RoutingResult routes = routeDesign(nl_, grid);
  EXPECT_EQ(routes.unroutedNets, 0);
  EXPECT_EQ(checkRoutedTrees(nl_, grid, routes), "");
}

TEST_F(DetailedFixture, LayerUtilizationAndMap) {
  RouteGrid grid(nl_, fp_.die, tech_.beol);
  const RoutingResult routes = routeDesign(nl_, grid);
  const auto util = layerUtilization(grid, routes);
  ASSERT_EQ(util.size(), 6u);
  double used = 0.0;
  for (const auto& u : util) {
    EXPECT_GE(u.capacityUm, u.usedUm * 0.0);  // capacities computed
    EXPECT_GE(u.utilization(), 0.0);
    EXPECT_LE(u.utilization(), 1.5);
    used += u.usedUm;
  }
  EXPECT_NEAR(used, routes.totalWirelengthUm, 1e-6);

  const std::string map = congestionMap(grid, routes, 32);
  EXPECT_NE(map.find("congestion map"), std::string::npos);
  // One heat row per (downsampled) gcell row.
  EXPECT_GT(std::count(map.begin(), map.end(), '\n'), 3);
}

TEST(RouteChecker, DetectsBrokenTree) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  const InstId a = nl.addInstance("a", lib.findCell("INV_X1"));
  const InstId b = nl.addInstance("b", lib.findCell("INV_X1"));
  nl.instance(a).pos = Point{umToDbu(10), umToDbu(10)};
  nl.instance(b).pos = Point{umToDbu(60), umToDbu(60)};
  const NetId n = nl.addNet("n");
  nl.connect(n, a, "Y");
  nl.connect(n, b, "A");

  const Rect die{0, 0, umToDbu(100), umToDbu(100)};
  RouteGrid grid(nl, die, tech.beol);
  RoutingResult routes = routeDesign(nl, grid);
  ASSERT_EQ(checkRoutedTrees(nl, grid, routes), "");

  // Break the tree: drop the last segment.
  auto& segs = routes.nets[static_cast<std::size_t>(n)].segs;
  ASSERT_FALSE(segs.empty());
  segs.pop_back();
  EXPECT_NE(checkRoutedTrees(nl, grid, routes), "");
}

}  // namespace
}  // namespace m3d
