/// \file test_trace_export.cpp
/// Chrome-trace export unit tests: collector gating, JSON round-trip
/// through the in-repo parser, pool worker tracks, thread-count
/// determinism of the RunReport, and the span RSS-delta semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/macro3d.hpp"
#include "core/parallel.hpp"
#include "lib/stdcell_factory.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"

namespace m3d {
namespace {

/// Disables the global trace collector and clears the thread tracer on
/// scope exit so tests don't leak trace state into each other.
class TraceGuard {
 public:
  TraceGuard() {
    obs::TraceCollector::global().disable();
    obs::Tracer::local().clear();
  }
  ~TraceGuard() {
    obs::TraceCollector::global().disable();
    obs::Tracer::local().clear();
  }
};

std::string tempPath(const std::string& leaf) { return ::testing::TempDir() + leaf; }

TEST(ObsChromeTrace, DisabledByDefaultRecordsNothing) {
  TraceGuard guard;
  obs::TraceCollector& tc = obs::TraceCollector::global();
  EXPECT_FALSE(tc.enabled());
  tc.recordComplete("ignored", 0, 10);
  tc.recordCounter("ignored", 1.0);
  {
    obs::ScopedPhase root("unit.disabled", /*forceRoot=*/true);
  }
  EXPECT_EQ(tc.eventCount(), 0u);
  EXPECT_EQ(tc.droppedEvents(), 0u);
}

TEST(ObsChromeTrace, UnwritablePathLeavesCollectorDisabled) {
  TraceGuard guard;
  obs::TraceCollector& tc = obs::TraceCollector::global();
  // The parent directory does not exist, so the writability probe at
  // enable() must fail without aborting anything.
  EXPECT_FALSE(tc.enable("/nonexistent-m3d-trace-dir/sub/trace.json"));
  EXPECT_FALSE(tc.enabled());
  {
    obs::ScopedPhase root("unit.after-bad-enable", /*forceRoot=*/true);
  }
  EXPECT_EQ(tc.eventCount(), 0u);
}

TEST(ObsChromeTrace, SpanAndCounterEventsRoundTrip) {
  TraceGuard guard;
  obs::TraceCollector& tc = obs::TraceCollector::global();
  const std::string path = tempPath("m3d_trace_roundtrip.json");
  ASSERT_TRUE(tc.enable(path));
  {
    obs::ScopedPhase root("unit.root", /*forceRoot=*/true);
    {
      obs::ScopedPhase child("unit.child");
      child.attr("widgets", 3.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    obs::series("unit.trace_counter").record(7.0);
    obs::series("unit.trace_counter").record(9.0);
  }
  EXPECT_GE(tc.eventCount(), 4u);  // two spans + two counter samples

  std::string err;
  const auto doc = obs::parseJson(tc.toJson(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const obs::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_FALSE(events->arr.empty());

  bool sawThreadName = false;
  bool sawChildSpan = false;
  bool sawCounter = false;
  double lastTs = -1.0;
  double minTs = 1e300;
  for (const obs::JsonValue& e : events->arr) {
    const obs::JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->isString());
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph->str == "M") {
      const obs::JsonValue* name = e.find("name");
      if (name != nullptr && name->str == "thread_name") sawThreadName = true;
      continue;
    }
    const obs::JsonValue* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->isNumber());
    EXPECT_GE(ts->number, lastTs);  // exporter sorts by timestamp
    lastTs = ts->number;
    minTs = std::min(minTs, ts->number);
    const obs::JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    if (ph->str == "X" && name->str == "unit.child") {
      sawChildSpan = true;
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GT(e.numberOr("dur", 0.0), 0.0);
      const obs::JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->numberOr("widgets", -1.0), 3.0);
    }
    if (ph->str == "C" && name->str == "unit.trace_counter") {
      sawCounter = true;
      const obs::JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const double v = args->numberOr("value", -1.0);
      EXPECT_TRUE(v == 7.0 || v == 9.0);
    }
  }
  EXPECT_TRUE(sawThreadName);
  EXPECT_TRUE(sawChildSpan);
  EXPECT_TRUE(sawCounter);
  EXPECT_EQ(minTs, 0.0);  // timestamps are normalized to the earliest event

  // writeFile() persists the same document and always leaves the collector
  // disabled with an empty buffer.
  ASSERT_TRUE(tc.writeFile(&err)) << err;
  EXPECT_FALSE(tc.enabled());
  EXPECT_EQ(tc.eventCount(), 0u);
}

TEST(ObsPoolTrace, WorkerTasksRecordQueueWaitOnWorkerTracks) {
  TraceGuard guard;
  obs::TraceCollector& tc = obs::TraceCollector::global();
  ASSERT_TRUE(tc.enable(tempPath("m3d_trace_pool.json")));

  // Sleepy elements guarantee the pool workers wake up and claim chunks
  // before the participating caller drains the queue alone.
  std::atomic<std::int64_t> sum{0};
  par::parallelFor(
      0, 256, 1,
      [&](std::int64_t i) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        sum.fetch_add(i, std::memory_order_relaxed);
      },
      /*numThreads=*/4);
  EXPECT_EQ(sum.load(), 256 * 255 / 2);

  std::string err;
  const auto doc = obs::parseJson(tc.toJson(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const obs::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);

  int poolTasks = 0;
  int workerTrackTasks = 0;
  for (const obs::JsonValue& e : events->arr) {
    const obs::JsonValue* ph = e.find("ph");
    const obs::JsonValue* name = e.find("name");
    if (ph == nullptr || name == nullptr || ph->str != "X" || name->str != "pool.task") continue;
    ++poolTasks;
    const obs::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_GE(args->numberOr("queue_wait_us", -1.0), 0.0);
    EXPECT_GE(args->numberOr("chunks", 0.0), 1.0);
    const double tid = e.numberOr("tid", -1.0);
    if (tid >= 1.0 && tid <= 63.0) ++workerTrackTasks;
  }
  EXPECT_GE(poolTasks, 2);
  EXPECT_GE(workerTrackTasks, 1) << "no pool.task event landed on a worker track";
}

/// Small congested routing problem (mirrors the bench_route smoke shape but
/// sized for a unit test).
struct MiniCluster {
  MiniCluster() : tech(makeTech28(6)), lib(makeStdCellLib(tech)), nl(&lib) {
    std::mt19937_64 rng(99);
    std::uniform_int_distribution<int> coord(70, 130);
    std::uniform_int_distribution<int> fanout(1, 3);
    int instances = 0;
    auto addInv = [&]() {
      const InstId i = nl.addInstance("i" + std::to_string(instances++), lib.findCell("INV_X1"));
      nl.instance(i).pos = Point{umToDbu(static_cast<double>(coord(rng))),
                                 umToDbu(static_cast<double>(coord(rng)))};
      return i;
    };
    for (int n = 0; n < 40; ++n) {
      const InstId drv = addInv();
      const NetId net = nl.addNet("n" + std::to_string(n));
      nl.connect(net, drv, "Y");
      const int sinks = fanout(rng);
      for (int s = 0; s < sinks; ++s) nl.connect(net, addInv(), "A");
    }
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  Rect die{0, 0, umToDbu(200), umToDbu(200)};
};

/// Counters + series of a RunReport as an exact text form (hexfloat keeps
/// doubles bit-exact), excluding gauges: parallel.threads legitimately
/// differs across thread counts.
std::string canonicalMetrics(const obs::RunReport& report) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& [name, value] : report.counters) os << name << '=' << value << '\n';
  for (const auto& slice : report.series) {
    os << slice.name << ':';
    for (double p : slice.points) os << ' ' << p;
    os << '\n';
  }
  return os.str();
}

TEST(ObsTraceDeterminism, ReportCountersAndSeriesIdenticalAcrossThreads) {
  TraceGuard guard;
  // Tracing stays ON during the runs: instrumentation must never perturb
  // the algorithm, so the reports still have to match bit for bit.
  ASSERT_TRUE(obs::TraceCollector::global().enable(tempPath("m3d_trace_det.json")));

  MiniCluster prob;
  RouteGridOptions gridOpt;
  gridOpt.trackUtilization = 0.08;  // force a couple of negotiation rounds

  auto routeReportAt = [&](int threads) {
    obs::Tracer::local().clear();
    obs::ScopedRun run("trace-determinism", "mini-cluster");
    RouterOptions ropt;
    ropt.maxIterations = 4;
    ropt.numThreads = threads;
    RouteGrid grid(prob.nl, prob.die, prob.tech.beol, gridOpt);
    const RoutingResult rr = routeDesign(prob.nl, grid, ropt);
    run.final("total_overflow", static_cast<double>(rr.totalOverflow));
    return canonicalMetrics(run.finish());
  };

  const std::string at1 = routeReportAt(1);
  const std::string at2 = routeReportAt(2);
  const std::string at8 = routeReportAt(8);
  ASSERT_FALSE(at1.empty());
  EXPECT_NE(at1.find("route.iter_pops"), std::string::npos);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

TEST(ObsSpanRss, SiblingSpanRssDeltasAreIndependent) {
  TraceGuard guard;
  if (obs::currentPeakRssKb() <= 0) GTEST_SKIP() << "peak RSS not readable on this platform";

  obs::Tracer& tracer = obs::Tracer::local();
  tracer.open("rss.root");
  const long startPeakKb = obs::currentPeakRssKb();

  // Child A: grow the process peak by at least 64 MB (touch every page so
  // the kernel actually commits the allocation).
  tracer.open("rss.grower");
  std::vector<std::vector<char>> ballast;
  for (int i = 0; i < 32 && obs::currentPeakRssKb() - startPeakKb < 64 * 1024; ++i) {
    ballast.emplace_back(16u << 20, '\0');
    std::vector<char>& block = ballast.back();
    for (std::size_t off = 0; off < block.size(); off += 4096) block[off] = 1;
  }
  const bool grew = obs::currentPeakRssKb() - startPeakKb >= 64 * 1024;
  tracer.close();

  // Child B: allocates nothing, so even though the process-global peak is
  // now high, its delta must be ~zero (this is the bug the delta fixes:
  // siblings used to all report the same process-global maximum).
  tracer.open("rss.idle");
  tracer.close();
  tracer.close();

  ASSERT_TRUE(tracer.hasCompletedRoot());
  const obs::Span root = tracer.takeLastRoot();
  ASSERT_EQ(root.children.size(), 2u);
  const obs::Span& grower = root.children[0];
  const obs::Span& idle = root.children[1];
  if (!grew) GTEST_SKIP() << "could not grow peak RSS (already huge?)";
  EXPECT_GE(grower.rssDeltaKb, 64 * 1024);
  EXPECT_LE(idle.rssDeltaKb, 1024);  // idle sibling: no growth attributed
  EXPECT_GE(root.rssDeltaKb, grower.rssDeltaKb);
  EXPECT_EQ(idle.peakRssAtCloseKb, grower.peakRssAtCloseKb);  // global peak is monotone
}

TEST(ObsSpanSelfTime, SelfDurExcludesDirectChildren) {
  TraceGuard guard;
  obs::Tracer& tracer = obs::Tracer::local();
  tracer.open("self.root");
  tracer.open("self.child");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tracer.close();
  tracer.close();
  const obs::Span root = tracer.takeLastRoot();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.selfDurNs(), root.durNs - root.children[0].durNs);
  EXPECT_LT(root.selfDurNs(), root.durNs);
  EXPECT_EQ(root.children[0].selfDurNs(), root.children[0].durNs);
}

}  // namespace
}  // namespace m3d
