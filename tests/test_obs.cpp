#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"

namespace m3d::obs {
namespace {

/// Restores the global log level and text sink on scope exit so tests don't
/// leak state into each other (the suite shares one process).
class LogStateGuard {
 public:
  LogStateGuard() : level_(logLevel()) {}
  ~LogStateGuard() {
    setLogTextSink(&std::cerr);
    setLogLevel(level_);
  }

 private:
  LogLevel level_;
};

TEST(ObsLog, ParseLevel) {
  EXPECT_EQ(parseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(parseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(parseLogLevel("bogus"), std::nullopt);
  EXPECT_EQ(parseLogLevel(""), std::nullopt);
}

TEST(ObsLog, LevelFiltering) {
  LogStateGuard guard;
  std::ostringstream sink;
  setLogTextSink(&sink);

  setLogLevel(LogLevel::kWarn);
  M3D_LOG(info) << "filtered-info";
  M3D_LOG(debug) << "filtered-debug";
  M3D_LOG(warn) << "visible-warn";
  M3D_LOG(error) << "visible-error";

  const std::string out = sink.str();
  EXPECT_EQ(out.find("filtered-info"), std::string::npos);
  EXPECT_EQ(out.find("filtered-debug"), std::string::npos);
  EXPECT_NE(out.find("visible-warn"), std::string::npos);
  EXPECT_NE(out.find("visible-error"), std::string::npos);
  EXPECT_NE(out.find("[m3d:warn]"), std::string::npos);
}

TEST(ObsLog, FilteredRhsNotEvaluated) {
  LogStateGuard guard;
  setLogLevel(LogLevel::kError);
  int evals = 0;
  auto expensive = [&]() {
    ++evals;
    return 42;
  };
  M3D_LOG(debug) << "x=" << expensive();
  EXPECT_EQ(evals, 0);
  M3D_LOG(error) << "x=" << expensive();
  EXPECT_EQ(evals, 1);
}

TEST(ObsLog, EnvOverrideWins) {
  LogStateGuard guard;
  ::setenv("M3D_LOG_LEVEL", "debug", 1);
  initLogLevelFromEnv();
  EXPECT_EQ(logLevel(), LogLevel::kDebug);

  // FlowOptions-style configuration must not beat the environment.
  configureLogging(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);

  ::unsetenv("M3D_LOG_LEVEL");
  initLogLevelFromEnv();  // no env var -> keeps the current level
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
  configureLogging(LogLevel::kError);  // now the request applies
  EXPECT_EQ(logLevel(), LogLevel::kError);
  configureLogging(std::nullopt);  // nullopt keeps the level
  EXPECT_EQ(logLevel(), LogLevel::kError);
}

TEST(ObsTrace, InactiveByDefault) {
  Tracer::local().clear();
  {
    ScopedPhase phase("orphan");
    EXPECT_FALSE(phase.recording());
    phase.attr("ignored", 1.0);
  }
  EXPECT_FALSE(Tracer::local().active());
  EXPECT_FALSE(Tracer::local().hasCompletedRoot());
}

TEST(ObsTrace, NestedSpanAccounting) {
  Tracer::local().clear();
  const auto work = [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); };
  {
    ScopedPhase root("root", /*forceRoot=*/true);
    ASSERT_TRUE(root.recording());
    {
      ScopedPhase a("child_a");
      ASSERT_TRUE(a.recording());
      a.attr("k", 1.5);
      work();
      {
        ScopedPhase g("grandchild");
        work();
      }
    }
    {
      ScopedPhase b("child_b");
      work();
    }
  }
  ASSERT_TRUE(Tracer::local().hasCompletedRoot());
  const Span span = Tracer::local().takeLastRoot();
  EXPECT_EQ(span.name, "root");
  ASSERT_EQ(span.children.size(), 2u);
  EXPECT_EQ(span.children[0].name, "child_a");
  EXPECT_EQ(span.children[1].name, "child_b");
  ASSERT_EQ(span.children[0].children.size(), 1u);
  EXPECT_EQ(span.children[0].children[0].name, "grandchild");
  EXPECT_EQ(span.treeSize(), 4u);

  // The parent's wall clock covers the sum of its children.
  EXPECT_GE(span.durNs, span.childrenDurNs());
  EXPECT_GE(span.children[0].durNs, span.children[0].children[0].durNs);
  EXPECT_GE(span.children[0].durNs, 5'000'000);  // slept >= 10 ms inside

  ASSERT_EQ(span.children[0].attrs.size(), 1u);
  EXPECT_EQ(span.children[0].attrs[0].first, "k");
  EXPECT_DOUBLE_EQ(span.children[0].attrs[0].second, 1.5);

  const Span* found = span.find("grandchild");
  ASSERT_NE(found, nullptr);
  EXPECT_GT(found->durNs, 0);
  EXPECT_EQ(span.find("missing"), nullptr);
}

TEST(ObsTrace, CurrentPath) {
  Tracer::local().clear();
  EXPECT_EQ(Tracer::local().currentPath(), "");
  ScopedPhase root("flow", /*forceRoot=*/true);
  ScopedPhase inner("place");
  EXPECT_EQ(Tracer::local().currentPath(), "flow/place");
  Tracer::local().clear();
}

TEST(ObsMetrics, CountersGaugesSeries) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test_obs.counter");
  const std::int64_t base = c.value();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), base + 5);
  // Same name -> same object.
  EXPECT_EQ(&reg.counter("test_obs.counter"), &c);

  reg.gauge("test_obs.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("test_obs.gauge").value(), 2.5);

  Series& s = reg.series("test_obs.series");
  const std::size_t mark = s.size();
  s.record(3.0);
  s.record(1.0);
  s.record(2.0);
  EXPECT_EQ(s.size(), mark + 3);
  const std::vector<double> tail = s.pointsFrom(mark);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_DOUBLE_EQ(tail[0], 3.0);
  EXPECT_DOUBLE_EQ(tail[2], 2.0);

  const Series::Stats st = reg.series("test_obs.stats").stats();
  EXPECT_EQ(st.count, 0u);
  reg.series("test_obs.stats").record(10.0);
  reg.series("test_obs.stats").record(20.0);
  const Series::Stats st2 = reg.series("test_obs.stats").stats();
  EXPECT_EQ(st2.count, 2u);
  EXPECT_DOUBLE_EQ(st2.min, 10.0);
  EXPECT_DOUBLE_EQ(st2.max, 20.0);
  EXPECT_DOUBLE_EQ(st2.mean, 15.0);
  EXPECT_DOUBLE_EQ(st2.last, 20.0);
}

TEST(ObsMetrics, SnapshotDelta) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test_obs.delta").add(7);  // pre-run noise
  reg.series("test_obs.delta_series").record(-1.0);

  const MetricsRegistry::Snapshot snap = reg.snapshot();
  reg.counter("test_obs.delta").add(3);
  reg.series("test_obs.delta_series").record(8.0);

  const auto itc = snap.counters.find("test_obs.delta");
  ASSERT_NE(itc, snap.counters.end());
  EXPECT_EQ(reg.counter("test_obs.delta").value() - itc->second, 3);

  const auto its = snap.seriesSizes.find("test_obs.delta_series");
  ASSERT_NE(its, snap.seriesSizes.end());
  const std::vector<double> delta = reg.series("test_obs.delta_series").pointsFrom(its->second);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_DOUBLE_EQ(delta[0], 8.0);
}

TEST(ObsJson, WriterEscaping) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.beginObject();
  w.kv("quote\"back\\slash", "line\nbreak\ttab");
  w.kv("ctl", std::string_view("\x01", 1));
  w.endObject();
  EXPECT_EQ(os.str(),
            "{\"quote\\\"back\\\\slash\":\"line\\nbreak\\ttab\",\"ctl\":\"\\u0001\"}");
}

TEST(ObsJson, ParseRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.beginObject();
  w.kv("str", "hello \"world\"");
  w.kv("int", static_cast<std::int64_t>(-42));
  w.kv("num", 1.5);
  w.kv("yes", true);
  w.key("null");
  w.valueNull();
  w.key("arr");
  w.beginArray();
  w.value(1);
  w.value(2.25);
  w.value("three");
  w.endArray();
  w.key("nested");
  w.beginObject();
  w.kv("deep", 9);
  w.endObject();
  w.endObject();

  std::string err;
  const auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->isObject());
  EXPECT_EQ(doc->find("str")->str, "hello \"world\"");
  EXPECT_DOUBLE_EQ(doc->find("int")->number, -42.0);
  EXPECT_DOUBLE_EQ(doc->numberOr("num", 0.0), 1.5);
  EXPECT_TRUE(doc->find("yes")->boolean);
  EXPECT_TRUE(doc->find("null")->isNull());
  const JsonValue* arr = doc->find("arr");
  ASSERT_TRUE(arr != nullptr && arr->isArray());
  ASSERT_EQ(arr->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->arr[1].number, 2.25);
  EXPECT_EQ(arr->arr[2].str, "three");
  EXPECT_DOUBLE_EQ(doc->find("nested")->numberOr("deep", 0.0), 9.0);
}

TEST(ObsJson, ParseErrors) {
  std::string err;
  EXPECT_FALSE(parseJson("{", &err).has_value());
  EXPECT_FALSE(parseJson("{\"a\":}", &err).has_value());
  EXPECT_FALSE(parseJson("[1,2,]", &err).has_value());
  EXPECT_FALSE(parseJson("true false", &err).has_value());
  EXPECT_FALSE(parseJson("", &err).has_value());
  EXPECT_TRUE(parseJson("[1,2,3]").has_value());
}

TEST(ObsRunReport, JsonRoundTrip) {
  Tracer::local().clear();
  ScopedRun run("TestFlow", "tiny");
  counter("test_obs.run_counter").add(11);
  gauge("test_obs.run_gauge").set(3.5);
  series("test_obs.run_series").record(1.0);
  series("test_obs.run_series").record(2.0);
  {
    ScopedPhase phase("stage_one");
    phase.attr("hpwl_um", 123.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  { ScopedPhase phase("stage_two"); }
  run.final("fclk_mhz", 450.0);
  const RunReport rep = run.finish();

  EXPECT_EQ(rep.flow, "TestFlow");
  EXPECT_EQ(rep.tile, "tiny");
  EXPECT_GT(rep.wallMs, 0.0);
  ASSERT_EQ(rep.root.children.size(), 2u);
  const std::vector<double>* pts = rep.findSeries("test_obs.run_series");
  ASSERT_NE(pts, nullptr);
  EXPECT_EQ(pts->size(), 2u);

  std::string err;
  const auto doc = parseJson(rep.toJson(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("schema")->str, RunReport::kSchema);
  EXPECT_EQ(doc->find("flow")->str, "TestFlow");
  EXPECT_EQ(doc->find("tile")->str, "tiny");
  EXPECT_GT(doc->numberOr("wall_ms", 0.0), 0.0);

  const JsonValue* span = doc->find("span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->find("name")->str, "flow:TestFlow");
  const JsonValue* children = span->find("children");
  ASSERT_TRUE(children != nullptr && children->isArray());
  ASSERT_EQ(children->arr.size(), 2u);
  EXPECT_EQ(children->arr[0].find("name")->str, "stage_one");
  EXPECT_GT(children->arr[0].numberOr("dur_ms", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(children->arr[0].find("attrs")->numberOr("hpwl_um", 0.0), 123.0);

  EXPECT_DOUBLE_EQ(doc->find("counters")->numberOr("test_obs.run_counter", 0.0), 11.0);
  EXPECT_DOUBLE_EQ(doc->find("gauges")->numberOr("test_obs.run_gauge", 0.0), 3.5);
  const JsonValue* ser = doc->find("series");
  ASSERT_NE(ser, nullptr);
  const JsonValue* slice = ser->find("test_obs.run_series");
  ASSERT_TRUE(slice != nullptr && slice->isArray());
  ASSERT_EQ(slice->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(slice->arr[1].number, 2.0);
  EXPECT_DOUBLE_EQ(doc->find("final")->numberOr("fclk_mhz", 0.0), 450.0);
}

TEST(ObsRunReport, AbandonedRunLeavesTracerClean) {
  Tracer::local().clear();
  {
    ScopedRun run("Abandoned", "tiny");
    ScopedPhase phase("partial");
    // finish() never called: the destructor must unwind the open spans.
  }
  EXPECT_FALSE(Tracer::local().active());
  EXPECT_FALSE(Tracer::local().hasCompletedRoot());
}

}  // namespace
}  // namespace m3d::obs
