#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "lib/sram_generator.hpp"
#include "lib/stdcell_factory.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table t("Demo");
  t.setHeader({"metric", "a", "b"});
  t.addRow({"x", "1", "2"});
  t.addRow({"longer_name", "3.5", "4.25"});
  const std::string s = t.str();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("longer_name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumAndDelta) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(470.0, 0), "470");
  EXPECT_EQ(Table::withDelta(470.0, 390.0, 0), "470 (+20.5%)");
  EXPECT_EQ(Table::withDelta(0.60, 1.20, 2), "0.60 (-50.0%)");
  // Zero baseline: no annotation.
  EXPECT_EQ(Table::withDelta(5.0, 0.0, 1), "5.0");
}

TEST(Svg, RendersMacrosAndCells) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  SramSpec spec{.name = "SR", .words = 1024, .bitsPerWord = 32};
  const CellTypeId mid = lib.addCell(makeSramMacro(spec, tech));
  const InstId m = nl.addInstance("mem0", mid);
  nl.instance(m).pos = Point{umToDbu(10), umToDbu(10)};
  nl.instance(m).fixed = true;
  const InstId g = nl.addInstance("g0", lib.findCell("INV_X1"));
  nl.instance(g).pos = Point{umToDbu(70), umToDbu(70)};

  const Rect die{0, 0, umToDbu(100), umToDbu(100)};
  const std::string svg = renderDieSvg(nl, die, DieId::kLogic, nullptr, nullptr);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("mem0"), std::string::npos);  // macro label
  // At least two rects beyond the background: macro + std cell.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, 3u);
}

TEST(Svg, DieFilterSelectsMacros) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  SramSpec spec{.name = "SR", .words = 512, .bitsPerWord = 16};
  const CellTypeId mid = lib.addCell(makeSramMacro(spec, tech));
  const InstId m = nl.addInstance("macro_on_macro_die", mid);
  nl.instance(m).pos = Point{umToDbu(5), umToDbu(5)};
  nl.instance(m).fixed = true;
  nl.instance(m).die = DieId::kMacro;

  const Rect die{0, 0, umToDbu(60), umToDbu(60)};
  const std::string logicView = renderDieSvg(nl, die, DieId::kLogic, nullptr, nullptr);
  const std::string macroView = renderDieSvg(nl, die, DieId::kMacro, nullptr, nullptr);
  EXPECT_EQ(logicView.find("macro_on_macro_die"), std::string::npos);
  EXPECT_NE(macroView.find("macro_on_macro_die"), std::string::npos);
}

TEST(Svg, WriteFile) {
  const std::string path = "test_svg_out.svg";
  EXPECT_TRUE(writeSvgFile(path, "<svg></svg>"));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "<svg></svg>");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace m3d
