#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "db/codec.hpp"
#include "db/design_db.hpp"
#include "db/hash.hpp"
#include "db/serialize.hpp"
#include "db/stage_cache.hpp"
#include "flows/flow_checkpoint.hpp"
#include "flows/flows.hpp"
#include "core/macro3d.hpp"
#include "lib/stdcell_factory.hpp"
#include "obs/metrics.hpp"
#include "tech/combined_beol.hpp"
#include "tech/tech_node.hpp"

/// Design-database tests (ctest label "db"):
///  - container round trips: save -> load -> save must be byte-identical,
///  - fault injection: truncation / flipped bytes anywhere must fail closed
///    with the documented typed error and leave the container empty,
///  - codec round trips over randomized netlists/floorplans (fixed seeds),
///  - the stage cache's content-addressed path convention.
/// Flow-level warm-rerun and ECO tests live in the FlowDb* suite (slow).

namespace m3d {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Container

db::DesignDb makeSampleDb() {
  db::DesignDb db;
  db.setSection("alpha", {1, 2, 3, 4, 5});
  db.setSection("beta", {});
  db.setSection("gamma", std::vector<std::uint8_t>(300, 0xAB));
  return db;
}

TEST(DbContainer, SerializeParseRoundTripIsByteIdentical) {
  const db::DesignDb db = makeSampleDb();
  const std::vector<std::uint8_t> bytes = db.serialize();

  db::DesignDb loaded;
  const db::DbStatus st = loaded.parse(bytes);
  ASSERT_TRUE(st.ok()) << st.detail;
  EXPECT_EQ(loaded.numSections(), 3);
  ASSERT_NE(loaded.section("alpha"), nullptr);
  EXPECT_EQ(*loaded.section("alpha"), (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  ASSERT_NE(loaded.section("beta"), nullptr);
  EXPECT_TRUE(loaded.section("beta")->empty());
  EXPECT_EQ(loaded.section("missing"), nullptr);
  EXPECT_EQ(loaded.sectionNames(), db.sectionNames());  // file order == insertion order
  EXPECT_EQ(loaded.sectionHash("gamma"), db.sectionHash("gamma"));

  EXPECT_EQ(loaded.serialize(), bytes);  // save -> load -> save byte identity
}

TEST(DbContainer, SaveLoadFileRoundTrip) {
  const std::string path = tempPath("m3d_dbtest_roundtrip.m3ddb");
  const db::DesignDb db = makeSampleDb();
  ASSERT_TRUE(db.saveFile(path).ok());

  db::DesignDb loaded;
  ASSERT_TRUE(loaded.loadFile(path).ok());
  EXPECT_EQ(loaded.serialize(), db.serialize());
  fs::remove(path);
}

TEST(DbContainer, MissingFileIsIoError) {
  db::DesignDb db;
  const db::DbStatus st = db.loadFile(tempPath("m3d_dbtest_does_not_exist.m3ddb"));
  EXPECT_EQ(st.error, db::DbError::kIoError);
}

TEST(DbContainer, BadMagicFailsClosed) {
  std::vector<std::uint8_t> bytes = makeSampleDb().serialize();
  bytes[0] ^= 0xFF;
  db::DesignDb db;
  const db::DbStatus st = db.parse(bytes);
  EXPECT_EQ(st.error, db::DbError::kBadMagic);
  EXPECT_EQ(db.numSections(), 0);
}

TEST(DbContainer, FlippedVersionByteFailsClosed) {
  std::vector<std::uint8_t> bytes = makeSampleDb().serialize();
  bytes[8] ^= 0x01;  // u32 version sits right after the 8-byte magic
  db::DesignDb db;
  const db::DbStatus st = db.parse(bytes);
  EXPECT_EQ(st.error, db::DbError::kBadVersion);
  EXPECT_EQ(db.numSections(), 0);
}

TEST(DbContainer, EveryTruncationFailsClosed) {
  const std::vector<std::uint8_t> bytes = makeSampleDb().serialize();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    db::DesignDb db;
    const db::DbStatus st = db.parse(cut);
    ASSERT_FALSE(st.ok()) << "parse succeeded on a " << len << "-byte prefix";
    ASSERT_EQ(st.error, db::DbError::kTruncated) << "len=" << len;
    ASSERT_EQ(db.numSections(), 0) << "len=" << len;
  }
}

TEST(DbContainer, CorruptedBytesAreDetectedEverywhere) {
  const std::vector<std::uint8_t> ref = makeSampleDb().serialize();
  // Flip every byte after the version field, one at a time: whether the
  // corruption lands in the section table or a payload, the table hash or
  // the per-section hash must catch it (never a silent wrong load).
  for (std::size_t i = 12; i < ref.size(); ++i) {
    std::vector<std::uint8_t> bytes = ref;
    bytes[i] ^= 0x40;
    db::DesignDb db;
    const db::DbStatus st = db.parse(bytes);
    ASSERT_FALSE(st.ok()) << "corruption at byte " << i << " went undetected";
    ASSERT_EQ(db.numSections(), 0) << "byte " << i;
  }
}

TEST(DbContainer, SectionCountCapRejectsCorruptCounts) {
  // A forged header claiming kMaxSections+1 sections must fail fast (not
  // attempt a huge allocation). Build by patching a valid empty container.
  db::DesignDb db;
  std::vector<std::uint8_t> bytes = db.serialize();
  const std::uint32_t bogus = db::DesignDb::kMaxSections + 1;
  std::memcpy(bytes.data() + 12, &bogus, sizeof bogus);
  db::DesignDb loaded;
  EXPECT_FALSE(loaded.parse(bytes).ok());
}

// ---------------------------------------------------------------------------
// Serialization primitives

TEST(DbSerialize, ReaderFailureIsSticky) {
  db::BinWriter w;
  w.u32(7);
  db::BinReader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // overrun
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // still failed
  EXPECT_EQ(r.str(), "");
}

TEST(DbSerialize, CountGuardsAgainstHugeAllocations) {
  db::BinWriter w;
  w.u64(static_cast<std::uint64_t>(1) << 60);  // absurd element count
  db::BinReader r(w.buffer());
  EXPECT_EQ(r.count(4), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(DbSerialize, DoublesRoundTripByBitPattern) {
  db::BinWriter w;
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(1.0 / 3.0);
  db::BinReader r(w.buffer());
  EXPECT_TRUE(std::signbit(r.f64()));
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_TRUE(r.ok() && r.atEnd());
}

// ---------------------------------------------------------------------------
// Codecs over randomized designs

/// Random INV-mesh netlist with ports (fixed seed => deterministic).
struct RandomDesign {
  explicit RandomDesign(std::uint64_t seed, int numInsts = 60)
      : tech(makeTech28(6)), lib(makeStdCellLib(tech)), nl(&lib) {
    std::mt19937_64 rng(seed);
    const CellTypeId inv = lib.findCell("INV_X1");
    const int pinA = *lib.cell(inv).findPin("A");
    std::vector<InstId> insts;
    for (int i = 0; i < numInsts; ++i) {
      const InstId id = nl.addInstance("g" + std::to_string(i), inv);
      nl.instance(id).pos = Point{umToDbu(1.0 + static_cast<double>(rng() % 96)),
                                  umToDbu(1.0 + static_cast<double>(rng() % 96))};
      if (rng() % 8 == 0) {
        nl.instance(id).fixed = true;
        nl.instance(id).die = (rng() % 2 == 0) ? DieId::kLogic : DieId::kMacro;
      }
      insts.push_back(id);
    }
    // in0 drives the first inverter; the last inverter drives out0.
    const PortId pin = nl.addPort("in0", PinDir::kInput, Side::kWest, false);
    const PortId pout = nl.addPort("out0", PinDir::kOutput, Side::kEast, false);
    const NetId nIn = nl.addNet("n_in");
    nl.connectPort(nIn, pin);
    nl.connect(nIn, insts.front(), "A");
    const NetId nOut = nl.addNet("n_out");
    nl.connect(nOut, insts.back(), "Y");
    nl.connectPort(nOut, pout);
    // Random fan-out nets between the inverters (a net is only created once
    // at least one free sink pin was drawn, so every net has a sink).
    for (int i = 0; i + 1 < numInsts; ++i) {
      std::vector<InstId> targets;
      const int want = 1 + static_cast<int>(rng() % 3);
      for (int s = 0; s < want; ++s) {
        const std::size_t t = static_cast<std::size_t>(i + 1) +
                              rng() % static_cast<std::uint64_t>(numInsts - i - 1);
        if (nl.instance(insts[t]).pinNets[static_cast<std::size_t>(pinA)] == kInvalidId) {
          targets.push_back(insts[t]);
        }
      }
      if (targets.empty()) continue;
      const NetId n = nl.addNet("n" + std::to_string(i));
      nl.connect(n, insts[static_cast<std::size_t>(i)], "Y");
      for (const InstId t : targets) {
        if (nl.instance(t).pinNets[static_cast<std::size_t>(pinA)] == kInvalidId) {
          nl.connect(n, t, "A");
        }
      }
    }
    fp.die = Rect{0, 0, umToDbu(100.0), umToDbu(100.0)};
    fp.rowHeight = tech.rowHeight;
    fp.siteWidth = tech.siteWidth;
    const int numBlk = static_cast<int>(rng() % 5);
    for (int i = 0; i < numBlk; ++i) {
      const Dbu x = umToDbu(static_cast<double>(rng() % 80));
      const Dbu y = umToDbu(static_cast<double>(rng() % 80));
      fp.blockages.push_back(
          Blockage{Rect{x, y, x + umToDbu(10.0), y + umToDbu(10.0)},
                   0.25 * static_cast<double>(1 + rng() % 4)});
    }
  }

  TechNode tech;
  Library lib;
  Netlist nl;
  Floorplan fp;
};

std::vector<std::uint8_t> encodedNetlist(const Netlist& nl) {
  db::BinWriter w;
  db::encodeNetlist(w, nl);
  return w.take();
}

TEST(DbCodec, NetlistSaveLoadSaveIsByteIdenticalRandomized) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    RandomDesign d(seed);
    const std::vector<std::uint8_t> bytes = encodedNetlist(d.nl);

    Netlist copy(&d.lib);
    db::BinReader r(bytes);
    ASSERT_TRUE(db::decodeNetlist(r, copy)) << "seed=" << seed;
    ASSERT_TRUE(r.ok() && r.atEnd()) << "seed=" << seed;
    EXPECT_TRUE(copy.validate().empty()) << copy.validate();

    EXPECT_EQ(encodedNetlist(copy), bytes) << "seed=" << seed;
    EXPECT_EQ(db::hashNetlist(copy), db::hashNetlist(d.nl)) << "seed=" << seed;
  }
}

TEST(DbCodec, NetlistHashIsPositionSensitive) {
  RandomDesign d(7);
  const std::uint64_t before = db::hashNetlist(d.nl);
  d.nl.instance(0).pos.x += 1;
  EXPECT_NE(db::hashNetlist(d.nl), before);
}

TEST(DbCodec, NetlistDecodeFailsClosedOnTruncationAndCorruption) {
  RandomDesign d(11);
  const std::vector<std::uint8_t> bytes = encodedNetlist(d.nl);
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + static_cast<long>(len));
    Netlist copy(&d.lib);
    db::BinReader r(cut);
    ASSERT_FALSE(db::decodeNetlist(r, copy) && r.atEnd()) << "len=" << len;
  }
}

TEST(DbCodec, LibraryRoundTripIsByteIdentical) {
  RandomDesign d(5);
  db::BinWriter w;
  db::encodeLibrary(w, d.lib);
  const std::vector<std::uint8_t> bytes = w.take();

  Library copy;
  db::BinReader r(bytes);
  ASSERT_TRUE(db::decodeLibrary(r, copy));
  ASSERT_TRUE(r.ok() && r.atEnd());

  db::BinWriter w2;
  db::encodeLibrary(w2, copy);
  EXPECT_EQ(w2.buffer(), bytes);
  EXPECT_EQ(db::hashLibrary(copy), db::hashLibrary(d.lib));
}

TEST(DbCodec, FloorplanRoundTripIsByteIdenticalRandomized) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    RandomDesign d(seed);
    db::BinWriter w;
    db::encodeFloorplan(w, d.fp);
    const std::vector<std::uint8_t> bytes = w.take();

    Floorplan copy;
    db::BinReader r(bytes);
    ASSERT_TRUE(db::decodeFloorplan(r, copy)) << "seed=" << seed;
    ASSERT_TRUE(r.ok() && r.atEnd());

    db::BinWriter w2;
    db::encodeFloorplan(w2, copy);
    EXPECT_EQ(w2.buffer(), bytes) << "seed=" << seed;
    EXPECT_EQ(db::hashFloorplan(copy), db::hashFloorplan(d.fp));
  }
}

TEST(DbCodec, CombinedBeolRoundTripIsByteIdentical) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  const Beol combined = buildCombinedBeol(logic.beol, macro.beol, F2fViaSpec{},
                                          MacroDieStackOrder::kFlipped);
  db::BinWriter w;
  db::encodeBeol(w, combined);
  const std::vector<std::uint8_t> bytes = w.take();

  Beol copy;
  db::BinReader r(bytes);
  ASSERT_TRUE(db::decodeBeol(r, copy));
  ASSERT_TRUE(r.ok() && r.atEnd());
  EXPECT_TRUE(copy.validate().empty());

  db::BinWriter w2;
  db::encodeBeol(w2, copy);
  EXPECT_EQ(w2.buffer(), bytes);
  EXPECT_EQ(db::hashBeol(copy), db::hashBeol(combined));
}

TEST(DbCodec, BeolHashSeesF2fViaPitch) {
  const TechNode logic = makeTech28(6);
  const TechNode macro = makeTech28(4);
  F2fViaSpec f2f;
  const Beol a = buildCombinedBeol(logic.beol, macro.beol, f2f,
                                   MacroDieStackOrder::kFlipped);
  f2f.pitch *= 2;
  const Beol b = buildCombinedBeol(logic.beol, macro.beol, f2f,
                                   MacroDieStackOrder::kFlipped);
  EXPECT_NE(db::hashBeol(a), db::hashBeol(b));
}

// ---------------------------------------------------------------------------
// Stage cache

TEST(DbStageCache, DisabledCacheNeverHits) {
  db::StageCache cache;
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.resumeEnabled());
  EXPECT_FALSE(cache.has(0, "place", 42));
}

TEST(DbStageCache, PathIsContentAddressedAndHasChecksExistence) {
  const std::string dir = tempPath("m3d_dbtest_cache");
  fs::remove_all(dir);
  db::StageCache cache(dir, /*resume=*/true);
  ASSERT_TRUE(cache.enabled());
  EXPECT_TRUE(cache.resumeEnabled());
  EXPECT_TRUE(fs::is_directory(dir));

  const std::uint64_t key = 0xDEADBEEFCAFEF00Dull;
  const std::string p = cache.path(3, "route", key);
  EXPECT_NE(p.find("stage3_route_"), std::string::npos);
  EXPECT_NE(p.find(".m3ddb"), std::string::npos);
  EXPECT_FALSE(cache.has(3, "route", key));
  ASSERT_TRUE(makeSampleDb().saveFile(p).ok());
  EXPECT_TRUE(cache.has(3, "route", key));
  EXPECT_FALSE(cache.has(3, "route", key + 1));  // different key, different file

  db::StageCache noResume(dir, /*resume=*/false);
  EXPECT_TRUE(noResume.enabled());
  EXPECT_FALSE(noResume.resumeEnabled());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Flow-level stage cache + ECO (slow; FlowDb* matches the "slow" label)

TileConfig dbTinyConfig() {
  TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

FlowOptions dbTinyOptions() {
  FlowOptions opt;
  opt.maxFreqRounds = 2;
  opt.optBase.maxPasses = 6;
  return opt;
}

int checkpointFileCount(const std::string& dir) {
  int n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".m3ddb") ++n;
  }
  return n;
}

struct CacheCounters {
  double hits, misses, writes, restoreFailures;
  static CacheCounters read() {
    return CacheCounters{obs::counter("db.stage_cache_hits").value(),
                         obs::counter("db.stage_cache_misses").value(),
                         obs::counter("db.stage_checkpoints_written").value(),
                         obs::counter("db.stage_cache_restore_failures").value()};
  }
};

TEST(FlowDbCache, WarmRerunRestoresAllStagesBitIdentical) {
  const std::string dir = tempPath("m3d_flowdb_warm");
  fs::remove_all(dir);

  FlowOptions opt = dbTinyOptions();
  opt.checkpointDir = dir;

  const CacheCounters c0 = CacheCounters::read();
  const FlowOutput cold = runFlowMacro3D(dbTinyConfig(), opt);
  const CacheCounters c1 = CacheCounters::read();
  EXPECT_EQ(c1.hits - c0.hits, 0.0);
  EXPECT_EQ(c1.misses - c0.misses, 7.0);
  EXPECT_EQ(c1.writes - c0.writes, 7.0);
  EXPECT_EQ(checkpointFileCount(dir), 7);

  const FlowOutput warm = runFlowMacro3D(dbTinyConfig(), opt);
  const CacheCounters c2 = CacheCounters::read();
  EXPECT_EQ(c2.hits - c1.hits, 7.0);  // the whole pipeline restored
  EXPECT_EQ(c2.misses - c1.misses, 0.0);
  EXPECT_EQ(c2.writes - c1.writes, 0.0);
  EXPECT_EQ(c2.restoreFailures - c1.restoreFailures, 0.0);
  EXPECT_EQ(checkpointFileCount(dir), 7);  // nothing re-written

  // The restored run is the cold run, bit for bit.
  EXPECT_EQ(warm.verify, cold.verify);
  EXPECT_EQ(warm.metrics.fclkMhz, cold.metrics.fclkMhz);
  EXPECT_EQ(warm.metrics.emeanFj, cold.metrics.emeanFj);
  EXPECT_EQ(warm.metrics.totalWirelengthM, cold.metrics.totalWirelengthM);
  EXPECT_EQ(warm.metrics.f2fBumps, cold.metrics.f2fBumps);
  EXPECT_EQ(warm.metrics.cellsResized, cold.metrics.cellsResized);
  EXPECT_EQ(warm.trace, cold.trace);
  fs::remove_all(dir);
}

TEST(FlowDbCache, BumpPitchEcoReusesPreRouteStages) {
  const std::string dir = tempPath("m3d_flowdb_eco_pitch");
  fs::remove_all(dir);

  FlowOptions opt = dbTinyOptions();
  opt.checkpointDir = dir;
  (void)runFlowMacro3D(dbTinyConfig(), opt);  // warm the cache
  ASSERT_EQ(checkpointFileCount(dir), 7);

  // ECO: double the F2F bump pitch. The combined BEOL first enters the key
  // chain at the route stage, so place/pre_route_opt/cts replay from the
  // cache and route..signoff recompute under the new stack.
  FlowOptions eco = opt;
  eco.f2fVia.pitch *= 2;
  const CacheCounters c0 = CacheCounters::read();
  const FlowOutput inc = runFlowMacro3D(dbTinyConfig(), eco);
  const CacheCounters c1 = CacheCounters::read();
  EXPECT_EQ(c1.hits - c0.hits, 3.0);    // place, pre_route_opt, cts
  EXPECT_EQ(c1.misses - c0.misses, 4.0);  // route..signoff
  EXPECT_EQ(c1.writes - c0.writes, 4.0);
  EXPECT_EQ(checkpointFileCount(dir), 11);

  // The incremental result must be bit-identical to a cold run of the same
  // ECO'd configuration.
  FlowOptions ecoCold = eco;
  ecoCold.checkpointDir.clear();
  const FlowOutput cold = runFlowMacro3D(dbTinyConfig(), ecoCold);
  EXPECT_EQ(inc.verify, cold.verify);
  EXPECT_EQ(inc.metrics.fclkMhz, cold.metrics.fclkMhz);
  EXPECT_EQ(inc.metrics.emeanFj, cold.metrics.emeanFj);
  EXPECT_EQ(inc.metrics.totalWirelengthM, cold.metrics.totalWirelengthM);
  EXPECT_EQ(inc.metrics.f2fBumps, cold.metrics.f2fBumps);
  fs::remove_all(dir);
}

TEST(FlowDbCache, SearchHaloEcoRecomputesRouteOnward) {
  const std::string dir = tempPath("m3d_flowdb_eco_halo");
  fs::remove_all(dir);

  FlowOptions opt = dbTinyOptions();
  opt.checkpointDir = dir;
  (void)runFlowMacro3D(dbTinyConfig(), opt);  // warm the cache
  ASSERT_EQ(checkpointFileCount(dir), 7);

  // ECO: widen the router's search window. The search-kernel knobs enter
  // the key chain at the route stage, so place/pre_route_opt/cts replay
  // from the cache and route..signoff recompute under the new window.
  FlowOptions eco = opt;
  eco.router.searchHaloGcells = 4;
  const CacheCounters c0 = CacheCounters::read();
  const FlowOutput inc = runFlowMacro3D(dbTinyConfig(), eco);
  const CacheCounters c1 = CacheCounters::read();
  EXPECT_EQ(c1.hits - c0.hits, 3.0);      // place, pre_route_opt, cts
  EXPECT_EQ(c1.misses - c0.misses, 4.0);  // route..signoff
  EXPECT_EQ(c1.writes - c0.writes, 4.0);
  EXPECT_EQ(checkpointFileCount(dir), 11);

  // The incremental result must be bit-identical to a cold run of the same
  // ECO'd configuration.
  FlowOptions ecoCold = eco;
  ecoCold.checkpointDir.clear();
  const FlowOutput cold = runFlowMacro3D(dbTinyConfig(), ecoCold);
  EXPECT_EQ(inc.verify, cold.verify);
  EXPECT_EQ(inc.metrics.fclkMhz, cold.metrics.fclkMhz);
  EXPECT_EQ(inc.metrics.totalWirelengthM, cold.metrics.totalWirelengthM);
  EXPECT_EQ(inc.routes.nodesPopped, cold.routes.nodesPopped);
  EXPECT_EQ(inc.routes.windowFallbacks, cold.routes.windowFallbacks);
  fs::remove_all(dir);
}

TEST(FlowDbCache, StandaloneCheckpointLoadReconstructsTheRun) {
  const std::string dir = tempPath("m3d_flowdb_load");
  fs::remove_all(dir);

  FlowOptions opt = dbTinyOptions();
  opt.checkpointDir = dir;
  const FlowOutput ref = runFlowMacro3D(dbTinyConfig(), opt);

  // Find the signoff checkpoint and load it standalone (fresh Library/Tile).
  std::string signoffPath;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("stage6_signoff_", 0) == 0) {
      signoffPath = e.path().string();
    }
  }
  ASSERT_FALSE(signoffPath.empty());

  FlowOutput loaded;
  std::string trace;
  const db::DbStatus st = loadFlowCheckpoint(signoffPath, loaded, &trace);
  ASSERT_TRUE(st.ok()) << db::dbErrorName(st.error) << ": " << st.detail;
  EXPECT_EQ(loaded.metrics.fclkMhz, ref.metrics.fclkMhz);
  EXPECT_EQ(loaded.metrics.emeanFj, ref.metrics.emeanFj);
  EXPECT_EQ(loaded.verify, ref.verify);
  EXPECT_EQ(db::hashNetlist(loaded.tile->netlist), db::hashNetlist(ref.tile->netlist));
  EXPECT_FALSE(trace.empty());

  // Corrupting the file must fail the standalone load closed, too.
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(signoffPath, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(signoffPath, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  FlowOutput corrupt;
  EXPECT_EQ(loadFlowCheckpoint(signoffPath, corrupt).error, db::DbError::kHashMismatch);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace m3d
