#include <gtest/gtest.h>

#include "extract/extraction.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class CornerFixture : public ::testing::Test {
 protected:
  CornerFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {
    const NetId clk = nl_.addNet("clk");
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    nl_.connectPort(clk, clkPort);
    Rng rng(17);
    CloudSpec spec;
    spec.prefix = "c";
    spec.numGates = 200;
    spec.numRegs = 40;
    spec.clockNet = clk;
    buildLogicCloud(nl_, rng, spec);
    EstimationOptions eopt = makeEstimationOptions(tech_.beol);
    paras_ = estimateDesign(nl_, eopt);
  }
  TechNode tech_;
  Library lib_;
  Netlist nl_;
  std::vector<NetParasitics> paras_;
};

TEST_F(CornerFixture, SlowCornerScalesMinPeriod) {
  Sta typical(nl_, paras_, nullptr, kTypicalCorner);
  Sta slow(nl_, paras_, nullptr, kSlowCorner);
  Sta fast(nl_, paras_, nullptr, kFastCorner);
  const double tTyp = typical.findMinPeriod();
  const double tSlow = slow.findMinPeriod();
  const double tFast = fast.findMinPeriod();
  // All delays and setup scale together, so the min period scales exactly.
  EXPECT_NEAR(tSlow / tTyp, kSlowCorner.delayDerate, 1e-3);
  EXPECT_NEAR(tFast / tTyp, kFastCorner.delayDerate, 1e-3);
  EXPECT_GT(tSlow, tTyp);
  EXPECT_LT(tFast, tTyp);
}

TEST_F(CornerFixture, SlackOrderingAcrossCorners) {
  Sta typical(nl_, paras_, nullptr, kTypicalCorner);
  Sta slow(nl_, paras_, nullptr, kSlowCorner);
  const double period = typical.findMinPeriod() * 1.05;
  EXPECT_GT(typical.worstSlack(period), slow.worstSlack(period));
}

}  // namespace
}  // namespace m3d
