#include <gtest/gtest.h>

#include "flows/tile_array.hpp"
#include "flows/flows.hpp"
#include "core/macro3d.hpp"

namespace m3d {
namespace {

TileConfig tinyCfg() {
  TileConfig cfg;
  cfg.name = "ta";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 300;
  cfg.coreRegs = 60;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 50;
  cfg.l2CtrlRegs = 12;
  cfg.l3CtrlGates = 60;
  cfg.l3CtrlRegs = 14;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

TEST(TileArray, Macro3DTileAssemblesWithoutExtraRouting) {
  FlowOptions opt;
  opt.maxFreqRounds = 2;
  const FlowOutput out = runFlowMacro3D(tinyCfg(), opt);
  const TileArrayCheck chk = checkTileArray(out, 4, 4);
  // Paper Sec. V-1: aligned pins connect tile instances "without additional
  // routing", for arbitrary tile counts.
  EXPECT_TRUE(chk.alignmentOk);
  EXPECT_EQ(chk.misalignedPairs, 0);
  EXPECT_DOUBLE_EQ(chk.interTileWirelengthUm, 0.0);
  EXPECT_GT(chk.interTileLinks, 0);
  // Tags: 3 NoCs x 4 link directions x 3 bits = 36; each vertical tag spans
  // nx*(ny-1)=12 abutments, each horizontal tag (nx-1)*ny=12.
  const int expected = 36 * 12;
  EXPECT_EQ(chk.interTileLinks, expected);
  // Half-cycle constraints closed at the sign-off period.
  EXPECT_TRUE(chk.halfPathsClosed);
  EXPECT_GE(chk.worstLinkSlack, 0.0);
}

TEST(TileArray, SingleTileHasNoLinks) {
  FlowOptions opt;
  opt.maxFreqRounds = 1;
  opt.preRouteOpt = false;
  opt.postRouteOpt = false;
  const FlowOutput out = runFlow2D(tinyCfg(), opt);
  const TileArrayCheck chk = checkTileArray(out, 1, 1);
  EXPECT_EQ(chk.interTileLinks, 0);
  EXPECT_TRUE(chk.alignmentOk);
}

}  // namespace
}  // namespace m3d
