/// \file test_run_diff.cpp
/// Run-diff regression gate unit tests: metric flattening for both JSON
/// schemas, direction-aware thresholding, per-metric overrides, and the
/// m3d_report CLI exit codes (driven in-process via runReportToolMain).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "report/run_diff.hpp"

namespace m3d {
namespace {

using Metrics = std::vector<std::pair<std::string, double>>;

Metrics flatten(const std::string& json) {
  std::string err;
  const auto doc = obs::parseJson(json, &err);
  EXPECT_TRUE(doc.has_value()) << err;
  if (!doc.has_value()) return {};
  Metrics out = flattenMetricsJson(*doc, &err);
  EXPECT_TRUE(err.empty()) << err;
  return out;
}

double valueOf(const Metrics& m, const std::string& key) {
  for (const auto& [k, v] : m) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "missing metric " << key;
  return 0.0;
}

Metrics withValue(Metrics m, const std::string& key, double value) {
  for (auto& [k, v] : m) {
    if (k == key) v = value;
  }
  return m;
}

const char* kRunReportDoc = R"({
  "schema": "m3d.run_report/1",
  "flow": "Macro-3D", "tile": "unit",
  "wall_ms": 1000.0,
  "peak_rss_kb": 50000,
  "span": { "name": "macro3d", "dur_ms": 1000.0, "self_ms": 10.0,
            "children": [
              { "name": "place", "dur_ms": 400.0, "self_ms": 390.0 },
              { "name": "route", "dur_ms": 500.0, "self_ms": 480.0 } ] },
  "counters": { "route.nodes_popped": 123456, "opt.cells_resized": 40 },
  "series_stats": { "place.hpwl": { "count": 5, "last": 8200.0 } },
  "final": { "fclk_mhz": 950.0, "total_overflow": 0.0 }
})";

const char* kBenchDoc = R"({
  "schema": "m3d.bench/1",
  "bench": "route_smoke",
  "wall_s": 0.08,
  "scalars": { "pops_windowed": 52000.0, "unrouted_nets": 0.0 },
  "flows": [ { "label": "macro3d", "metrics": { "wirelength_um": 104000.0 } } ]
})";

TEST(ObsRunDiff, FlattensRunReportSchema) {
  const Metrics m = flatten(kRunReportDoc);
  EXPECT_EQ(valueOf(m, "wall_ms"), 1000.0);
  EXPECT_EQ(valueOf(m, "peak_rss_kb"), 50000.0);
  EXPECT_EQ(valueOf(m, "counters.route.nodes_popped"), 123456.0);
  EXPECT_EQ(valueOf(m, "span.place.dur_ms"), 400.0);
  EXPECT_EQ(valueOf(m, "span.route.self_ms"), 480.0);
  EXPECT_EQ(valueOf(m, "series.place.hpwl.last"), 8200.0);
  EXPECT_EQ(valueOf(m, "final.fclk_mhz"), 950.0);
}

TEST(ObsRunDiff, FlattensBenchSchema) {
  const Metrics m = flatten(kBenchDoc);
  EXPECT_EQ(valueOf(m, "wall_s"), 0.08);
  EXPECT_EQ(valueOf(m, "scalars.pops_windowed"), 52000.0);
  EXPECT_EQ(valueOf(m, "flow.macro3d.wirelength_um"), 104000.0);
}

TEST(ObsRunDiff, UnknownSchemaReportsError) {
  std::string err;
  const auto doc = obs::parseJson(R"({"schema": "bogus/9", "wall_ms": 1.0})", &err);
  ASSERT_TRUE(doc.has_value());
  const Metrics m = flattenMetricsJson(*doc, &err);
  EXPECT_TRUE(m.empty());
  EXPECT_NE(err.find("bogus/9"), std::string::npos);
}

TEST(ObsRunDiff, MetricDirections) {
  EXPECT_EQ(metricDirection("wall_ms"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("span.route.self_ms"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("counters.route.nodes_popped"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("series.place.hpwl.last"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("final.fclk_mhz"), MetricDirection::kHigherBetter);
  EXPECT_EQ(metricDirection("final.wns_ps"), MetricDirection::kHigherBetter);
  EXPECT_EQ(metricDirection("counters.db.stage_cache_hits"), MetricDirection::kHigherBetter);
  EXPECT_EQ(metricDirection("counters.opt.cells_resized"), MetricDirection::kInfo);
}

// Direction policy lock for the incremental-STA telemetry: a jump in
// full-sweep fallbacks (or a design going min-period infeasible) is a
// regression, the opt stage wall gates as wall-clock, and the raw cone
// update/visit volume is informational only.
TEST(ObsRunDiff, IncrementalStaKeysGatePolicy) {
  EXPECT_EQ(metricDirection("counters.sta.full_fallbacks"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("counters.sta.min_period_infeasible"),
            MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("span.pre_route_opt.dur_ms"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("span.post_route_opt.self_ms"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("counters.sta.incr_updates"), MetricDirection::kInfo);
  EXPECT_EQ(metricDirection("counters.sta.cone_nodes"), MetricDirection::kInfo);
  EXPECT_EQ(metricDirection("counters.route.crit_refreshes"), MetricDirection::kInfo);
}

// Direction policy lock for the placer-engine ablation gate: HPWL and
// density-overflow keys (bench table + flow finals + per-iteration series)
// must gate as higher-worse so a QoR slip in either engine fails the diff.
TEST(ObsRunDiff, PlaceQorKeysGateHigherWorse) {
  EXPECT_EQ(metricDirection("final.place_hpwl_mm"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("final.place_overflow"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("series.place.iter_hpwl.last"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("series.place.iter_overflow.last"), MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("bench.hpwl_ablation.analytic_small.hpwl_um"),
            MetricDirection::kHigherWorse);
  EXPECT_EQ(metricDirection("bench.hpwl_ablation.b2b_small.route_overflow"),
            MetricDirection::kHigherWorse);
  // Iteration counts carry no monotone quality meaning: info, never gating.
  EXPECT_EQ(metricDirection("final.place_iterations"), MetricDirection::kInfo);
}

TEST(ObsRunDiff, IdenticalRunsProduceNoRegressions) {
  const Metrics base = flatten(kRunReportDoc);
  const DiffResult r = diffMetrics(base, base, DiffOptions{});
  EXPECT_EQ(r.regressions, 0);
  for (const DiffRow& row : r.rows) {
    EXPECT_FALSE(row.regression) << row.key;
    EXPECT_FALSE(row.improvement) << row.key;
  }
}

TEST(ObsRunDiff, WallClockRegressionGatesAtTenPercent) {
  const Metrics base = flatten(kRunReportDoc);
  const Metrics cur = withValue(base, "wall_ms", 1100.0);  // +10%
  // Default wall threshold is 5%: a 10% slowdown must gate.
  const DiffResult r = diffMetrics(base, cur, DiffOptions{});
  EXPECT_EQ(r.regressions, 1);
  // A 10% speedup is an improvement, never a regression.
  const DiffResult faster = diffMetrics(base, withValue(base, "wall_ms", 900.0), DiffOptions{});
  EXPECT_EQ(faster.regressions, 0);
}

TEST(ObsRunDiff, HigherBetterMetricGatesOnDrop) {
  const Metrics base = flatten(kRunReportDoc);
  const DiffResult drop = diffMetrics(base, withValue(base, "final.fclk_mhz", 850.0),
                                      DiffOptions{});
  EXPECT_EQ(drop.regressions, 1);
  const DiffResult rise = diffMetrics(base, withValue(base, "final.fclk_mhz", 1050.0),
                                      DiffOptions{});
  EXPECT_EQ(rise.regressions, 0);
}

TEST(ObsRunDiff, InfoMetricsNeverGate) {
  const Metrics base = flatten(kRunReportDoc);
  const DiffResult r = diffMetrics(base, withValue(base, "counters.opt.cells_resized", 80.0),
                                   DiffOptions{});
  EXPECT_EQ(r.regressions, 0);
}

TEST(ObsRunDiff, ZeroBaseRegressionStillFlagged) {
  // deltaPct is undefined at base==0 but the absolute comparison must
  // still catch new overflow appearing.
  const Metrics base = flatten(kRunReportDoc);
  const DiffResult r = diffMetrics(base, withValue(base, "final.total_overflow", 3.0),
                                   DiffOptions{});
  EXPECT_EQ(r.regressions, 1);
}

TEST(ObsRunDiff, PerMetricOverrideWins) {
  const Metrics base = flatten(kRunReportDoc);
  const Metrics cur = withValue(base, "wall_ms", 1100.0);
  DiffOptions loose;
  loose.perMetricPct.emplace_back("wall_ms", 25.0);
  EXPECT_EQ(diffMetrics(base, cur, loose).regressions, 0);
  DiffOptions tight;
  tight.perMetricPct.emplace_back("counters.route.nodes_popped", 0.001);
  const Metrics popped = withValue(base, "counters.route.nodes_popped", 123466.0);
  EXPECT_EQ(diffMetrics(base, popped, tight).regressions, 1);
}

TEST(ObsRunDiff, AddedAndRemovedMetricsDoNotGate) {
  Metrics base = flatten(kRunReportDoc);
  Metrics cur = base;
  cur.emplace_back("final.brand_new", 1.0);
  base.emplace_back("final.gone", 2.0);
  const DiffResult r = diffMetrics(base, cur, DiffOptions{});
  EXPECT_EQ(r.regressions, 0);
  bool sawAdded = false;
  bool sawRemoved = false;
  for (const DiffRow& row : r.rows) {
    if (row.key == "final.brand_new") sawAdded = !row.inBase && row.inCur;
    if (row.key == "final.gone") sawRemoved = row.inBase && !row.inCur;
  }
  EXPECT_TRUE(sawAdded);
  EXPECT_TRUE(sawRemoved);
}

class ObsRunDiffCli : public ::testing::Test {
 protected:
  std::string writeDoc(const std::string& leaf, const std::string& contents) {
    const std::string path = ::testing::TempDir() + leaf;
    std::ofstream os(path);
    os << contents;
    EXPECT_TRUE(os.good());
    return path;
  }

  int runCli(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "m3d_report");
    return runReportToolMain(static_cast<int>(argv.size()), argv.data());
  }
};

TEST_F(ObsRunDiffCli, IdenticalFilesExitZero) {
  const std::string a = writeDoc("diff_base.json", kRunReportDoc);
  const std::string b = writeDoc("diff_same.json", kRunReportDoc);
  EXPECT_EQ(runCli({"diff", a.c_str(), b.c_str(), "--quiet"}), 0);
}

TEST_F(ObsRunDiffCli, InjectedWallRegressionExitsNonZero) {
  const std::string a = writeDoc("diff_base2.json", kRunReportDoc);
  std::string slower = kRunReportDoc;
  const auto pos = slower.find("\"wall_ms\": 1000.0");
  ASSERT_NE(pos, std::string::npos);
  slower.replace(pos, std::string("\"wall_ms\": 1000.0").size(), "\"wall_ms\": 1100.0");
  const std::string b = writeDoc("diff_slower.json", slower);
  EXPECT_EQ(runCli({"diff", a.c_str(), b.c_str(), "--quiet"}), 1);
  // A loose enough wall threshold waves the same pair through.
  EXPECT_EQ(runCli({"diff", a.c_str(), b.c_str(), "--wall-threshold", "25", "--quiet"}), 0);
}

TEST_F(ObsRunDiffCli, BadUsageAndMissingFilesExitTwo) {
  EXPECT_EQ(runCli({}), 2);
  EXPECT_EQ(runCli({"frobnicate"}), 2);
  EXPECT_EQ(runCli({"diff", "/nonexistent/a.json", "/nonexistent/b.json"}), 2);
  const std::string a = writeDoc("diff_base3.json", kRunReportDoc);
  EXPECT_EQ(runCli({"diff", a.c_str()}), 2);
  EXPECT_EQ(runCli({"diff", a.c_str(), a.c_str(), "--threshold", "abc"}), 2);
}

}  // namespace
}  // namespace m3d
