#include <gtest/gtest.h>

#include <sstream>

#include "io/lefdef.hpp"
#include "lib/sram_generator.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "netlist/openpiton.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

TEST(Lef, RoundTripTechAndLibrary) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  SramSpec spec{.name = "SRAM_RT", .words = 1024, .bitsPerWord = 16};
  lib.addCell(makeSramMacro(spec, tech));

  std::stringstream ss;
  writeLef(ss, tech, lib);

  TechNode tech2;
  Library lib2;
  std::string err;
  ASSERT_TRUE(readLef(ss, tech2, lib2, &err)) << err;

  EXPECT_EQ(tech2.name, tech.name);
  EXPECT_EQ(tech2.siteWidth, tech.siteWidth);
  EXPECT_EQ(tech2.rowHeight, tech.rowHeight);
  EXPECT_DOUBLE_EQ(tech2.vdd, tech.vdd);
  ASSERT_EQ(tech2.beol.numMetals(), tech.beol.numMetals());
  for (int l = 0; l < tech.beol.numMetals(); ++l) {
    EXPECT_EQ(tech2.beol.metal(l).name, tech.beol.metal(l).name);
    EXPECT_EQ(tech2.beol.metal(l).dir, tech.beol.metal(l).dir);
    EXPECT_EQ(tech2.beol.metal(l).pitch, tech.beol.metal(l).pitch);
    EXPECT_DOUBLE_EQ(tech2.beol.metal(l).rPerUm, tech.beol.metal(l).rPerUm);
    EXPECT_DOUBLE_EQ(tech2.beol.metal(l).cPerUm, tech.beol.metal(l).cPerUm);
  }
  for (int l = 0; l < tech.beol.numCuts(); ++l) {
    EXPECT_EQ(tech2.beol.cut(l).name, tech.beol.cut(l).name);
    EXPECT_DOUBLE_EQ(tech2.beol.cut(l).res, tech.beol.cut(l).res);
    EXPECT_EQ(tech2.beol.cut(l).isF2f, tech.beol.cut(l).isF2f);
  }

  ASSERT_EQ(lib2.numCells(), lib.numCells());
  for (CellTypeId id = 0; id < lib.numCells(); ++id) {
    const CellType& a = lib.cell(id);
    const CellType& b = lib2.cell(id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.cls, b.cls);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.substrateWidth, b.substrateWidth);
    EXPECT_DOUBLE_EQ(a.setup, b.setup);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.driveStrength, b.driveStrength);
    ASSERT_EQ(a.pins.size(), b.pins.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(a.pins[p].name, b.pins[p].name);
      EXPECT_EQ(a.pins[p].dir, b.pins[p].dir);
      EXPECT_DOUBLE_EQ(a.pins[p].cap, b.pins[p].cap);
      EXPECT_EQ(a.pins[p].isClock, b.pins[p].isClock);
      EXPECT_EQ(a.pins[p].layer, b.pins[p].layer);
      EXPECT_EQ(a.pins[p].offset, b.pins[p].offset);
    }
    ASSERT_EQ(a.arcs.size(), b.arcs.size());
    for (std::size_t k = 0; k < a.arcs.size(); ++k) {
      EXPECT_EQ(a.arcs[k].fromPin, b.arcs[k].fromPin);
      EXPECT_DOUBLE_EQ(a.arcs[k].intrinsic, b.arcs[k].intrinsic);
      EXPECT_DOUBLE_EQ(a.arcs[k].driveRes, b.arcs[k].driveRes);
    }
    ASSERT_EQ(a.obstructions.size(), b.obstructions.size());
    for (std::size_t k = 0; k < a.obstructions.size(); ++k) {
      EXPECT_EQ(a.obstructions[k].layer, b.obstructions[k].layer);
      EXPECT_EQ(a.obstructions[k].rect, b.obstructions[k].rect);
    }
  }
  // The parsed library supports the same family navigation.
  EXPECT_EQ(lib2.family("INV").size(), lib.family("INV").size());
}

TEST(Lef, RejectsMalformedInput) {
  TechNode tech;
  Library lib;
  std::string err;
  {
    std::stringstream ss("LAYER M1 H 100");
    EXPECT_FALSE(readLef(ss, tech, lib, &err));
    EXPECT_FALSE(err.empty());
  }
  {
    std::stringstream ss("GIBBERISH foo");
    TechNode t2;
    Library l2;
    EXPECT_FALSE(readLef(ss, t2, l2, &err));
  }
  {
    std::stringstream ss("TECH t 200 1200 0.9\nPIN A I 1 0 M1 0 0\n");
    TechNode t3;
    Library l3;
    EXPECT_FALSE(readLef(ss, t3, l3, &err));
    EXPECT_NE(err.find("PIN outside"), std::string::npos);
  }
}

class DefRoundTrip : public ::testing::Test {
 protected:
  DefRoundTrip() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}
  TechNode tech_;
  Library lib_;
  Netlist nl_;
};

TEST_F(DefRoundTrip, PreservesDesign) {
  // Small cloud with ports and a fixed macro-ish instance.
  const NetId clk = nl_.addNet("clk");
  const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
  nl_.connectPort(clk, clkPort);
  Rng rng(3);
  CloudSpec spec;
  spec.prefix = "d";
  spec.numGates = 120;
  spec.numRegs = 24;
  spec.clockNet = clk;
  buildLogicCloud(nl_, rng, spec);
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    nl_.instance(i).pos = Point{i * 500, (i % 7) * 1200};
  }
  nl_.instance(3).fixed = true;
  nl_.instance(4).die = DieId::kMacro;
  Floorplan fp;
  fp.die = Rect{0, 0, umToDbu(120), umToDbu(120)};
  fp.rowHeight = tech_.rowHeight;
  fp.siteWidth = tech_.siteWidth;
  assignPorts(nl_, fp.die);
  ASSERT_TRUE(nl_.validate().empty());

  std::stringstream ss;
  writeDef(ss, "cloud", nl_, fp);

  Netlist nl2(&lib_);
  Floorplan fp2;
  std::string name;
  std::string err;
  ASSERT_TRUE(readDef(ss, nl2, fp2, &name, &err)) << err;
  EXPECT_EQ(name, "cloud");
  EXPECT_EQ(fp2.die, fp.die);
  EXPECT_EQ(fp2.rowHeight, fp.rowHeight);

  ASSERT_EQ(nl2.numInstances(), nl_.numInstances());
  ASSERT_EQ(nl2.numNets(), nl_.numNets());
  ASSERT_EQ(nl2.numPorts(), nl_.numPorts());
  EXPECT_TRUE(nl2.validate().empty()) << nl2.validate();

  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    EXPECT_EQ(nl2.instance(i).name, nl_.instance(i).name);
    EXPECT_EQ(nl2.instance(i).pos, nl_.instance(i).pos);
    EXPECT_EQ(nl2.instance(i).fixed, nl_.instance(i).fixed);
    EXPECT_EQ(nl2.instance(i).die, nl_.instance(i).die);
    EXPECT_EQ(nl2.cellOf(i).name, nl_.cellOf(i).name);
  }
  for (PortId p = 0; p < nl_.numPorts(); ++p) {
    EXPECT_EQ(nl2.port(p).name, nl_.port(p).name);
    EXPECT_EQ(nl2.port(p).pos, nl_.port(p).pos);
    EXPECT_EQ(nl2.port(p).halfCycle, nl_.port(p).halfCycle);
    EXPECT_EQ(nl2.port(p).pairTag, nl_.port(p).pairTag);
  }
  // Net membership preserved (pin sets compared as driver + sink names).
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    EXPECT_EQ(nl2.net(n).name, nl_.net(n).name);
    EXPECT_EQ(nl2.net(n).pins.size(), nl_.net(n).pins.size());
    EXPECT_EQ(nl2.net(n).isClock, nl_.net(n).isClock);
    // The same HPWL implies the same pin placement.
    EXPECT_EQ(nl2.netHpwl(n), nl_.netHpwl(n));
  }
}

TEST_F(DefRoundTrip, UnknownMasterFails) {
  std::stringstream ss("DESIGN x\nDIEAREA 0 0 100 100 1200 200\nINST a NOPE 0 0 0 L\nEND\n");
  Netlist nl2(&lib_);
  Floorplan fp2;
  std::string err;
  EXPECT_FALSE(readDef(ss, nl2, fp2, nullptr, &err));
  EXPECT_NE(err.find("unknown master"), std::string::npos);
}

TEST(DefFullTile, TileSurvivesRoundTripThroughFiles) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  TileConfig cfg;
  cfg.name = "io";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 300;
  cfg.coreRegs = 60;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 50;
  cfg.l2CtrlRegs = 12;
  cfg.l3CtrlGates = 60;
  cfg.l3CtrlRegs = 14;
  cfg.nocGates = 50;
  cfg.nocRegs = 12;
  cfg.nocDataBits = 2;
  const Tile tile = generateTile(lib, tech, cfg);
  Floorplan fp;
  fp.die = Rect{0, 0, umToDbu(300), umToDbu(300)};
  fp.rowHeight = tech.rowHeight;
  fp.siteWidth = tech.siteWidth;

  ASSERT_TRUE(writeLefFile("io_test.lef", tech, lib));
  ASSERT_TRUE(writeDefFile("io_test.def", "tile", tile.netlist, fp));

  TechNode tech2;
  Library lib2;
  std::string err;
  ASSERT_TRUE(readLefFile("io_test.lef", tech2, lib2, &err)) << err;
  Netlist nl2(&lib2);
  Floorplan fp2;
  ASSERT_TRUE(readDefFile("io_test.def", nl2, fp2, nullptr, &err)) << err;
  EXPECT_TRUE(nl2.validate().empty()) << nl2.validate();
  EXPECT_EQ(nl2.numInstances(), tile.netlist.numInstances());
  EXPECT_EQ(nl2.totalHpwl(), tile.netlist.totalHpwl());
  std::remove("io_test.lef");
  std::remove("io_test.def");
}

}  // namespace
}  // namespace m3d
