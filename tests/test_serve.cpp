#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/macro3d.hpp"
#include "db/stage_cache.hpp"
#include "flows/flows.hpp"
#include "io/fsutil.hpp"
#include "netlist/openpiton.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/job_queue.hpp"
#include "serve/job_runner.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

/// Flow-service tests.
///  - Serve* suites (ctest label "serve"): protocol round trips, queue
///    scheduling/coalescing semantics, spec -> options mapping. No flows run.
///  - ServeFlow* suites (labels "serve;slow"): end-to-end -- concurrent
///    same-key stage-cache races, torn-entry self-healing, LRU eviction,
///    and a full in-process daemon exercised by concurrent clients
///    (including the coalesced-ECO-batch acceptance scenario).

namespace m3d {
namespace {

namespace fs = std::filesystem;
using namespace m3d::serve;

std::string tempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

JobSpec tinySpec() {
  JobSpec spec;
  spec.flow = "macro3d";
  spec.tile = "tiny";
  spec.maxFreqRounds = 2;
  spec.optMaxPasses = 6;
  spec.threads = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, SpecJsonRoundTrip) {
  JobSpec spec = tinySpec();
  spec.kind = JobKind::kEco;
  spec.f2fPitchScale = 2.5;
  spec.priority = 7;
  spec.resume = false;
  spec.signoff = false;
  spec.macroDieMetals = 4;
  spec.placeEngine = "analytic";
  spec.label = "pitch-study \"quoted\"";

  const std::string line = encodeSubmit(spec);
  std::string err;
  const auto doc = obs::parseJson(line, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const obs::JsonValue* job = doc->find("job");
  ASSERT_NE(job, nullptr);

  JobSpec back;
  ASSERT_TRUE(JobSpec::fromJson(*job, &back, &err)) << err;
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.flow, spec.flow);
  EXPECT_EQ(back.tile, spec.tile);
  EXPECT_EQ(back.shrink, spec.shrink);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.maxFreqRounds, spec.maxFreqRounds);
  EXPECT_EQ(back.optMaxPasses, spec.optMaxPasses);
  EXPECT_EQ(back.signoff, spec.signoff);
  EXPECT_EQ(back.resume, spec.resume);
  EXPECT_EQ(back.macroDieMetals, spec.macroDieMetals);
  EXPECT_EQ(back.f2fPitchScale, spec.f2fPitchScale);
  EXPECT_EQ(back.placeEngine, spec.placeEngine);
  EXPECT_EQ(back.label, spec.label);
}

TEST(ServeProtocol, SpecValidationRejectsBadFields) {
  JobSpec spec = tinySpec();
  EXPECT_EQ(spec.validate(), "");

  JobSpec bad = spec;
  bad.flow = "4d";
  EXPECT_NE(bad.validate(), "");
  bad = spec;
  bad.tile = "huge";
  EXPECT_NE(bad.validate(), "");
  bad = spec;
  bad.shrink = 0;
  EXPECT_NE(bad.validate(), "");
  bad = spec;
  bad.f2fPitchScale = 0.0;
  EXPECT_NE(bad.validate(), "");
  bad = spec;
  bad.macroDieMetals = 5;
  EXPECT_NE(bad.validate(), "");
  bad = spec;
  bad.placeEngine = "quadratic";
  EXPECT_NE(bad.validate(), "");
  // ECO against a flow with no F2F interface is meaningless.
  bad = spec;
  bad.kind = JobKind::kEco;
  bad.flow = "2d";
  EXPECT_NE(bad.validate(), "");
}

TEST(ServeProtocol, HashHexRoundTrip) {
  for (const std::uint64_t h :
       {0ull, 1ull, 0xDEADBEEFCAFEBABEull, ~0ull, 0x00000000FFFFFFFFull}) {
    std::uint64_t back = 0;
    ASSERT_TRUE(hexToHash(hashToHex(h), &back));
    EXPECT_EQ(back, h);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(hexToHash("", &out));
  EXPECT_FALSE(hexToHash("xyz", &out));
  EXPECT_FALSE(hexToHash("00112233445566778", &out));  // 17 digits
}

TEST(ServeProtocol, BaseKeyIgnoresEcoAndSchedulingKnobs) {
  const JobSpec base = tinySpec();
  // Knobs that must NOT change the base design identity (they are exactly
  // what a coalesced batch varies).
  JobSpec same = base;
  same.kind = JobKind::kEco;
  same.f2fPitchScale = 3.0;
  same.threads = 8;
  same.priority = -5;
  same.resume = false;
  same.label = "other";
  EXPECT_EQ(same.baseKey(), base.baseKey());

  // Knobs that DO shape the place/opt/cts prefix must re-key.
  JobSpec diff = base;
  diff.tile = "small";
  EXPECT_NE(diff.baseKey(), base.baseKey());
  diff = base;
  diff.flow = "2d";
  EXPECT_NE(diff.baseKey(), base.baseKey());
  diff = base;
  diff.shrink = 2;
  EXPECT_NE(diff.baseKey(), base.baseKey());
  diff = base;
  diff.maxFreqRounds = 3;
  EXPECT_NE(diff.baseKey(), base.baseKey());
  // The place engine shapes the place-stage prefix, so it must re-key.
  diff = base;
  diff.placeEngine = "analytic";
  EXPECT_NE(diff.baseKey(), base.baseKey());
}

TEST(ServeProtocol, ResultJsonRoundTrip) {
  JobResult r;
  r.metrics.flow = "Macro-3D";
  r.metrics.tileName = "tiny";
  r.metrics.fclkMhz = 1050.5;
  r.metrics.f2fBumps = 913;
  r.metrics.verifyViolations = 0;
  r.cachePrefixStages = 3;
  r.ecoRipped = 807;
  r.ecoReused = 2132;
  r.coalesced = true;
  r.artifactHash = 0x15A874F7E641B97Full;
  r.artifactSource = "checkpoint";
  r.wallMs = 183.5;
  r.finalCheckpoint = "/tmp/cache/stage6_signoff_00.m3ddb";

  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/false);
  r.writeJson(w);
  std::string err;
  const auto doc = obs::parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  JobResult back;
  ASSERT_TRUE(JobResult::fromJson(*doc, &back, &err)) << err;
  EXPECT_EQ(back.metrics.flow, r.metrics.flow);
  EXPECT_EQ(back.metrics.fclkMhz, r.metrics.fclkMhz);
  EXPECT_EQ(back.metrics.f2fBumps, r.metrics.f2fBumps);
  EXPECT_EQ(back.cachePrefixStages, r.cachePrefixStages);
  EXPECT_EQ(back.ecoRipped, r.ecoRipped);
  EXPECT_EQ(back.ecoReused, r.ecoReused);
  EXPECT_EQ(back.coalesced, r.coalesced);
  // The 64-bit hash survives exactly (it crosses the wire as hex, not as a
  // double, which would round past 2^53).
  EXPECT_EQ(back.artifactHash, r.artifactHash);
  EXPECT_EQ(back.artifactSource, r.artifactSource);
  EXPECT_EQ(back.finalCheckpoint, r.finalCheckpoint);
}

// ---------------------------------------------------------------------------
// Queue scheduling

TEST(ServeQueue, PriorityThenFifoOrder) {
  JobQueue q;
  JobSpec a = tinySpec();
  a.label = "a";
  JobSpec b = tinySpec();
  b.shrink = 2;  // distinct baseKey, so coalescing does not interfere
  b.priority = 5;
  b.label = "b";
  JobSpec c = tinySpec();
  c.shrink = 3;
  c.priority = 5;
  c.label = "c";
  const std::uint64_t ia = q.submit(a);
  const std::uint64_t ib = q.submit(b);
  const std::uint64_t ic = q.submit(c);

  // Highest priority first; FIFO between the two priority-5 jobs.
  auto j1 = q.dequeue();
  ASSERT_NE(j1, nullptr);
  EXPECT_EQ(j1->id, ib);
  auto j2 = q.dequeue();
  ASSERT_NE(j2, nullptr);
  EXPECT_EQ(j2->id, ic);
  auto j3 = q.dequeue();
  ASSERT_NE(j3, nullptr);
  EXPECT_EQ(j3->id, ia);
}

TEST(ServeQueue, CancelOnlyQueuedJobs) {
  JobQueue q;
  const std::uint64_t id = q.submit(tinySpec());
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already terminal
  EXPECT_FALSE(q.cancel(999));

  const std::uint64_t id2 = q.submit(tinySpec());
  auto job = q.dequeue();
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->id, id2);
  EXPECT_FALSE(q.cancel(id2));  // running jobs do not cancel
  q.complete(id2, true, JobResult{}, "");
  EXPECT_EQ(q.find(id2)->state, JobState::kDone);
}

TEST(ServeQueue, CloseCancelsQueuedAndUnblocksDequeue) {
  // A worker blocked in dequeue() on an empty queue is released by close().
  {
    JobQueue q;
    std::atomic<bool> gotNull{false};
    std::thread worker([&] { gotNull.store(q.dequeue() == nullptr); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    q.close();
    worker.join();
    EXPECT_TRUE(gotNull.load());
  }
  // close() cancels jobs still queued while leaving running ones alone. Two
  // same-baseKey jobs pin the second in the queue (its batch is busy), so
  // there is no race with a hungry worker here.
  JobQueue q;
  const std::uint64_t id1 = q.submit(tinySpec());
  const std::uint64_t id2 = q.submit(tinySpec());
  auto running = q.dequeue();
  ASSERT_NE(running, nullptr);
  ASSERT_EQ(running->id, id1);
  q.close();
  EXPECT_EQ(q.find(id1)->state, JobState::kRunning);
  EXPECT_EQ(q.find(id2)->state, JobState::kCancelled);
  EXPECT_EQ(q.dequeue(), nullptr);
  // The drained in-flight job still completes normally after close().
  q.complete(id1, true, JobResult{}, "");
  EXPECT_EQ(q.find(id1)->state, JobState::kDone);
  // Submitting against a closed queue yields an instantly-cancelled job.
  const std::uint64_t late = q.submit(tinySpec());
  EXPECT_EQ(q.find(late)->state, JobState::kCancelled);
}

TEST(ServeQueue, SameBaseKeyJobsSerializeAndCoalesce) {
  JobQueue q;
  JobSpec flow = tinySpec();
  JobSpec eco = tinySpec();
  eco.kind = JobKind::kEco;
  eco.f2fPitchScale = 2.0;
  ASSERT_EQ(flow.baseKey(), eco.baseKey());
  const std::uint64_t idFlow = q.submit(flow);
  const std::uint64_t idEco = q.submit(eco);

  auto first = q.dequeue();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, idFlow);
  EXPECT_FALSE(first->coalesced);

  // The sibling shares the batch: it must not dispatch while the first
  // member runs, even with a hungry second worker.
  std::atomic<bool> dispatched{false};
  std::thread worker([&] {
    auto second = q.dequeue();
    dispatched.store(true);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->id, idEco);
    EXPECT_TRUE(second->coalesced);
    // The ECO inherits the completed flow job's checkpoint as its seed.
    EXPECT_EQ(second->ecoSeedPath, "/cache/stage6_signoff_ab.m3ddb");
    q.complete(second->id, true, JobResult{}, "");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(dispatched.load());

  JobResult done;
  done.finalCheckpoint = "/cache/stage6_signoff_ab.m3ddb";
  q.complete(idFlow, true, done, "");
  worker.join();

  const QueueStats s = q.stats();
  EXPECT_EQ(s.done, 2);
  EXPECT_EQ(s.coalesced, 1);
}

TEST(ServeQueue, EcoSeedComesOnlyFromFlowJobs) {
  JobQueue q;
  JobSpec eco1 = tinySpec();
  eco1.kind = JobKind::kEco;
  eco1.f2fPitchScale = 1.5;
  JobSpec eco2 = eco1;
  eco2.f2fPitchScale = 2.0;
  q.submit(eco1);
  const std::uint64_t id2 = q.submit(eco2);

  auto first = q.dequeue();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->ecoSeedPath, "");  // no flow member completed yet
  JobResult r;
  r.finalCheckpoint = "/cache/stage6_signoff_eco.m3ddb";
  q.complete(first->id, true, r, "");

  // An ECO sibling's checkpoint must NOT become the seed: seeds only come
  // from kFlow members, so results never depend on sibling finish order.
  auto second = q.dequeue();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->id, id2);
  EXPECT_TRUE(second->coalesced);  // prefix is warm all the same
  EXPECT_EQ(second->ecoSeedPath, "");
  q.complete(second->id, true, r, "");
}

TEST(ServeQueue, DistinctBatchesDispatchConcurrently) {
  JobQueue q;
  JobSpec a = tinySpec();
  JobSpec b = tinySpec();
  b.shrink = 2;
  q.submit(a);
  q.submit(b);
  auto j1 = q.dequeue();
  auto j2 = q.dequeue();  // must not block: different baseKey
  ASSERT_NE(j1, nullptr);
  ASSERT_NE(j2, nullptr);
  EXPECT_NE(j1->baseKey, j2->baseKey);
  q.complete(j1->id, true, JobResult{}, "");
  q.complete(j2->id, true, JobResult{}, "");
}

TEST(ServeQueue, WaitJobTimesOutAndSeesTerminalStates) {
  JobQueue q;
  const std::uint64_t id = q.submit(tinySpec());
  auto snap = q.waitJob(id, 30);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->state, JobState::kQueued);  // timed out, still queued
  EXPECT_EQ(q.waitJob(12345, 10), nullptr);

  auto job = q.dequeue();
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    q.complete(job->id, false, JobResult{}, "boom");
  });
  auto done = q.waitJob(id, 0);
  finisher.join();
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->state, JobState::kFailed);
  EXPECT_EQ(done->error, "boom");
}

// ---------------------------------------------------------------------------
// Spec -> tile/options mapping

TEST(ServeRunner, TileConfigShrinkFloorsAtOneAndRenames) {
  const TileConfig base = tileConfigFor("tiny", 1);
  EXPECT_EQ(base.name, "tiny");
  const TileConfig half = tileConfigFor("tiny", 2);
  EXPECT_EQ(half.name, "tiny-s2");
  EXPECT_EQ(half.coreGates, base.coreGates / 2);
  const TileConfig floor = tileConfigFor("tiny", 1000000);
  EXPECT_GE(floor.coreGates, 1);
  EXPECT_GE(floor.nocRegs, 1);
  EXPECT_EQ(tileConfigFor("small", 1).name, makeSmallCacheTileConfig().name);
  EXPECT_EQ(tileConfigFor("large", 1).name, makeLargeCacheTileConfig().name);
}

TEST(ServeRunner, FlowOptionsMapping) {
  JobSpec spec = tinySpec();
  spec.kind = JobKind::kEco;
  spec.f2fPitchScale = 2.0;
  spec.threads = 0;
  RunnerOptions ropt;
  ropt.cacheDir = "/some/cache";
  ropt.cacheMaxBytes = 123456;
  ropt.defaultThreads = 3;
  const FlowOptions opt = flowOptionsFor(spec, ropt, "/seed/route.m3ddb");
  EXPECT_EQ(opt.checkpointDir, "/some/cache");
  EXPECT_EQ(opt.cacheMaxBytes, 123456);
  EXPECT_EQ(opt.numThreads, 3);  // spec leaves threads at auto -> server default
  EXPECT_EQ(opt.maxFreqRounds, 2);
  EXPECT_EQ(opt.optBase.maxPasses, 6);
  EXPECT_EQ(opt.ecoRouteFrom, "/seed/route.m3ddb");
  EXPECT_EQ(opt.f2fVia.pitch, FlowOptions{}.f2fVia.pitch * 2);
  EXPECT_EQ(opt.placer.engine, PlaceEngine::kB2B);  // spec default is "b2b"

  // A plain flow job never consumes the ECO seed.
  spec.kind = JobKind::kFlow;
  EXPECT_EQ(flowOptionsFor(spec, ropt, "/seed/route.m3ddb").ecoRouteFrom, "");

  // The engine name maps onto PlacerOptions::engine.
  spec.placeEngine = "analytic";
  EXPECT_EQ(flowOptionsFor(spec, ropt, "").placer.engine, PlaceEngine::kAnalytic);
}

// ---------------------------------------------------------------------------
// End-to-end: shared-cache concurrency (label serve;slow)

FlowOptions tinyFlowOptions(const std::string& cacheDir, int threads) {
  FlowOptions opt;
  opt.maxFreqRounds = 2;
  opt.optBase.maxPasses = 6;
  opt.numThreads = threads;
  opt.checkpointDir = cacheDir;
  opt.report.logSummary = false;
  return opt;
}

TileConfig tinyTile() { return tileConfigFor("tiny", 1); }

std::vector<std::uint8_t> fileBytes(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(io::readFileBytes(path, bytes)) << path;
  return bytes;
}

int cacheFileCount(const std::string& dir) {
  int n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".m3ddb") ++n;
  }
  return n;
}

TEST(ServeFlowCache, ConcurrentSameKeyRaceOneWinnerBitIdentical) {
  // Serial reference run (its checkpoint bytes are the ground truth).
  const std::string refDir = tempPath("m3d_serve_race_ref");
  fs::remove_all(refDir);
  const FlowOutput ref = runFlowMacro3D(tinyTile(), tinyFlowOptions(refDir, 1));
  ASSERT_FALSE(ref.finalCheckpointPath.empty());
  const std::vector<std::uint8_t> refFinal = fileBytes(ref.finalCheckpointPath);

  // Two jobs racing on the same stage keys, at several thread counts: the
  // cache must end with exactly one winner per stage and byte-identical
  // artifacts (checkpoints are content-addressed and flows deterministic).
  for (const int threads : {1, 2, 8}) {
    const std::string dir =
        tempPath("m3d_serve_race_t" + std::to_string(threads));
    fs::remove_all(dir);
    FlowOutput a;
    FlowOutput b;
    std::thread ta([&] { a = runFlowMacro3D(tinyTile(), tinyFlowOptions(dir, threads)); });
    std::thread tb([&] { b = runFlowMacro3D(tinyTile(), tinyFlowOptions(dir, threads)); });
    ta.join();
    tb.join();

    EXPECT_EQ(cacheFileCount(dir), 7) << "threads=" << threads;
    EXPECT_EQ(a.metrics.fclkMhz, ref.metrics.fclkMhz) << "threads=" << threads;
    EXPECT_EQ(b.metrics.fclkMhz, ref.metrics.fclkMhz) << "threads=" << threads;
    EXPECT_EQ(a.metrics.totalWirelengthM, ref.metrics.totalWirelengthM);
    EXPECT_EQ(b.metrics.totalWirelengthM, ref.metrics.totalWirelengthM);
    EXPECT_EQ(a.trace, ref.trace);
    EXPECT_EQ(b.trace, ref.trace);
    ASSERT_EQ(a.finalCheckpointPath, b.finalCheckpointPath);
    EXPECT_EQ(fileBytes(a.finalCheckpointPath), refFinal) << "threads=" << threads;

    // The index agrees with the directory after the dust settles.
    db::StageCache cache(dir, /*resume=*/true);
    std::int64_t diskBytes = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".m3ddb") {
        diskBytes += static_cast<std::int64_t>(fs::file_size(e.path()));
      }
    }
    EXPECT_EQ(cache.indexedBytes(), diskBytes) << "threads=" << threads;
    fs::remove_all(dir);
  }
  fs::remove_all(refDir);
}

TEST(ServeFlowCache, TornEntryIsDetectedRemovedAndRepublished) {
  const std::string dir = tempPath("m3d_serve_torn");
  fs::remove_all(dir);
  const FlowOptions opt = tinyFlowOptions(dir, 1);
  const FlowOutput cold = runFlowMacro3D(tinyTile(), opt);
  ASSERT_FALSE(cold.finalCheckpointPath.empty());
  const std::vector<std::uint8_t> good = fileBytes(cold.finalCheckpointPath);

  // Fault injection: tear the signoff checkpoint in half, as if a producer
  // had died mid-write before the atomic-rename discipline existed.
  {
    std::ofstream f(cold.finalCheckpointPath, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(good.data()),
            static_cast<std::streamsize>(good.size() / 2));
  }

  const double failures0 = static_cast<double>(
      obs::counter("db.stage_cache_restore_failures").value());
  const FlowOutput warm = runFlowMacro3D(tinyTile(), opt);
  const double failures1 = static_cast<double>(
      obs::counter("db.stage_cache_restore_failures").value());

  // The torn entry fails closed, the run recomputes and matches the cold
  // run, and the corrupt bytes are replaced by a good re-publish.
  EXPECT_EQ(failures1 - failures0, 1.0);
  EXPECT_EQ(warm.metrics.fclkMhz, cold.metrics.fclkMhz);
  EXPECT_EQ(warm.trace, cold.trace);
  EXPECT_EQ(fileBytes(cold.finalCheckpointPath), good);
  fs::remove_all(dir);
}

TEST(ServeFlowCache, LruEvictionKeepsDirectoryUnderBudget) {
  // Size the budget from an unbounded run: big enough for the two largest
  // entries, too small for all seven.
  const std::string probeDir = tempPath("m3d_serve_lru_probe");
  fs::remove_all(probeDir);
  runFlowMacro3D(tinyTile(), tinyFlowOptions(probeDir, 1));
  std::vector<std::int64_t> sizes;
  for (const auto& e : fs::directory_iterator(probeDir)) {
    if (e.path().extension() == ".m3ddb") {
      sizes.push_back(static_cast<std::int64_t>(fs::file_size(e.path())));
    }
  }
  ASSERT_EQ(sizes.size(), 7u);
  std::sort(sizes.rbegin(), sizes.rend());
  const std::int64_t budget = sizes[0] + sizes[1] + 1;
  fs::remove_all(probeDir);

  const std::string dir = tempPath("m3d_serve_lru");
  fs::remove_all(dir);
  FlowOptions opt = tinyFlowOptions(dir, 1);
  opt.cacheMaxBytes = budget;
  const double evict0 =
      static_cast<double>(obs::counter("db.stage_cache_evictions").value());
  const FlowOutput out = runFlowMacro3D(tinyTile(), opt);
  const double evict1 =
      static_cast<double>(obs::counter("db.stage_cache_evictions").value());

  EXPECT_GT(evict1 - evict0, 0.0);
  db::StageCacheOptions copt;
  copt.maxBytes = budget;
  db::StageCache cache(dir, true, copt);
  EXPECT_LE(cache.indexedBytes(), budget);
  EXPECT_LT(cacheFileCount(dir), 7);
  // Eviction is bookkeeping only: the run's results are untouched.
  EXPECT_GT(out.metrics.fclkMhz, 0.0);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End-to-end: the daemon under concurrent clients (label serve;slow)

struct TestServer {
  explicit TestServer(ServerOptions opt) : server(std::move(opt)) {}
  Server server;
  /// start() + a deferred wait()-runner: tests trigger shutdown via a
  /// client op or requestShutdown(), then join().
  bool start() {
    std::string err;
    const bool ok = server.start(&err);
    EXPECT_TRUE(ok) << err;
    return ok;
  }
  void shutdownAndJoin() {
    server.requestShutdown();
    server.wait();
  }
};

ServerOptions serverOptions(const std::string& tag, int executors) {
  ServerOptions opt;
  const std::string dir = tempPath(tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  opt.socketPath = dir + "/serve.sock";
  opt.cacheDir = dir + "/cache";
  opt.executors = executors;
  opt.jobThreads = 1;
  opt.reportPath = dir + "/report.json";
  return opt;
}

TEST(ServeFlowServer, FourConcurrentClientsMatchSerialBitForBit) {
  // Serial reference: the same two specs, run back to back against a fresh
  // cache (cold, then warm) -- the artifact hashes are the ground truth.
  JobSpec specA = tinySpec();
  specA.label = "A";
  JobSpec specB = tinySpec();
  specB.shrink = 2;
  specB.label = "B";

  std::vector<std::uint64_t> serialHash(2, 0);
  {
    const std::string refDir = tempPath("m3d_serve_e2e_ref");
    fs::remove_all(refDir);
    RunnerOptions ropt;
    ropt.cacheDir = refDir + "/cache";
    fs::create_directories(ropt.cacheDir);
    for (int s = 0; s < 2; ++s) {
      Job job;
      job.spec = s == 0 ? specA : specB;
      JobResult r;
      std::string err;
      ASSERT_TRUE(serve::runJob(job, ropt, &r, &err)) << err;
      serialHash[static_cast<std::size_t>(s)] = r.artifactHash;
      EXPECT_EQ(r.artifactSource, "checkpoint");
    }
    fs::remove_all(refDir);
  }

  // Four clients hammer one server (two per spec) over one shared cache.
  TestServer ts(serverOptions("m3d_serve_e2e", /*executors=*/4));
  ASSERT_TRUE(ts.start());
  std::vector<JobResult> results(4);
  std::vector<int> oks(4, 0);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < 4; ++i) {
      clients.emplace_back([&, i] {
        Client c;
        std::string err;
        if (!c.connect(ts.server.options().socketPath, &err)) return;
        JobSpec spec = i % 2 == 0 ? specA : specB;
        spec.label += "-client" + std::to_string(i);
        oks[static_cast<std::size_t>(i)] =
            c.runJob(spec, &results[static_cast<std::size_t>(i)], &err) ? 1 : 0;
      });
    }
    for (std::thread& t : clients) t.join();
  }
  ts.shutdownAndJoin();

  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(oks[static_cast<std::size_t>(i)], 1) << "client " << i;
    const std::uint64_t expect = serialHash[static_cast<std::size_t>(i % 2)];
    EXPECT_EQ(results[static_cast<std::size_t>(i)].artifactHash, expect)
        << "client " << i << ": concurrent artifact differs from serial";
    EXPECT_EQ(results[static_cast<std::size_t>(i)].artifactSource, "checkpoint");
  }
  fs::remove_all(tempPath("m3d_serve_e2e"));
}

TEST(ServeFlowServer, CoalescedEcoBatchSharesPlaceOptCtsPrefix) {
  TestServer ts(serverOptions("m3d_serve_eco_batch", /*executors=*/4));
  ASSERT_TRUE(ts.start());
  const std::string socket = ts.server.options().socketPath;

  Client c;
  std::string err;
  ASSERT_TRUE(c.connect(socket, &err)) << err;

  // Base flow job first: it publishes the shared prefix + the ECO seed.
  JobSpec base = tinySpec();
  base.label = "base";
  JobResult baseResult;
  ASSERT_TRUE(c.runJob(base, &baseResult, &err)) << err;
  EXPECT_EQ(baseResult.cachePrefixStages, 0);

  // A batch of 4 bump-pitch ECOs submitted at once. They share the base
  // design's baseKey, so the queue serializes them and each replays the
  // place/pre_route_opt/cts prefix (3 stages) and ECO-seeds its route.
  const double scales[4] = {1.25, 1.5, 1.75, 2.0};
  std::vector<std::uint64_t> ids(4);
  for (int i = 0; i < 4; ++i) {
    JobSpec eco = tinySpec();
    eco.kind = JobKind::kEco;
    eco.f2fPitchScale = scales[i];
    eco.label = "eco" + std::to_string(i);
    ASSERT_TRUE(c.submit(eco, &ids[static_cast<std::size_t>(i)], &err)) << err;
  }
  for (int i = 0; i < 4; ++i) {
    JobState state = JobState::kQueued;
    ASSERT_TRUE(c.waitJob(ids[static_cast<std::size_t>(i)], 0, &state, &err)) << err;
    ASSERT_EQ(state, JobState::kDone) << "eco " << i;
    JobResult r;
    ASSERT_TRUE(c.result(ids[static_cast<std::size_t>(i)], &r, &err)) << err;
    // The acceptance bar: >= 3 prefix stages from the cache, every member
    // coalesced, and the ECO route actually reused most of the seed.
    EXPECT_GE(r.cachePrefixStages, 3) << "eco " << i;
    EXPECT_TRUE(r.coalesced) << "eco " << i;
    EXPECT_GE(r.ecoReused, 0) << "eco " << i;
    EXPECT_GT(r.ecoReused + r.ecoRipped, 0) << "eco " << i;
  }
  c.close();
  ts.shutdownAndJoin();

  // The server's aggregate run report records the batch: 4 coalesced jobs,
  // >= 12 coalesced prefix stages, and the cache-hit counter covers them.
  const std::string reportPath = ts.server.options().reportPath;
  std::ifstream f(reportPath);
  ASSERT_TRUE(f.is_open()) << reportPath;
  std::stringstream buf;
  buf << f.rdbuf();
  const auto doc = obs::parseJson(buf.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const obs::JsonValue* finals = doc->find("final");
  ASSERT_NE(finals, nullptr);
  EXPECT_EQ(finals->numberOr("jobs_done", -1), 5.0);
  EXPECT_GE(finals->numberOr("jobs_coalesced", -1), 4.0);
  EXPECT_GE(finals->numberOr("coalesced_prefix_stages", -1), 12.0);
  const obs::JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->numberOr("db.stage_cache_hits", 0), 12.0);
  fs::remove_all(tempPath("m3d_serve_eco_batch"));
}

TEST(ServeFlowServer, GracefulShutdownDrainsRunningAndCancelsQueued) {
  TestServer ts(serverOptions("m3d_serve_drain", /*executors=*/1));
  ASSERT_TRUE(ts.start());
  Client c;
  std::string err;
  ASSERT_TRUE(c.connect(ts.server.options().socketPath, &err)) << err;

  JobSpec first = tinySpec();
  first.label = "inflight";
  std::uint64_t id1 = 0;
  ASSERT_TRUE(c.submit(first, &id1, &err)) << err;
  // Wait until it is actually running (one executor -> the second job
  // below must stay queued).
  for (int i = 0; i < 200; ++i) {
    const auto snap = ts.server.queue().find(id1);
    ASSERT_NE(snap, nullptr);
    if (snap->state == JobState::kRunning || jobStateTerminal(snap->state)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  JobSpec second = tinySpec();
  second.shrink = 2;
  second.label = "queued";
  std::uint64_t id2 = 0;
  ASSERT_TRUE(c.submit(second, &id2, &err)) << err;

  ASSERT_TRUE(c.shutdownServer(&err)) << err;
  ts.server.wait();

  // The in-flight job drained to completion; the queued one was cancelled.
  const auto j1 = ts.server.queue().find(id1);
  const auto j2 = ts.server.queue().find(id2);
  ASSERT_NE(j1, nullptr);
  ASSERT_NE(j2, nullptr);
  EXPECT_EQ(j1->state, JobState::kDone);
  EXPECT_EQ(j2->state, JobState::kCancelled);
  // The aggregate report was still written on this shutdown path.
  EXPECT_TRUE(io::fileExists(ts.server.options().reportPath));
  fs::remove_all(tempPath("m3d_serve_drain"));
}

}  // namespace
}  // namespace m3d
