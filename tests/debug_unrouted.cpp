// Ad-hoc debug probe: find why Macro-3D nets fail to route.
#include <iostream>
#include <map>

#include "core/macro3d.hpp"
#include "flows/case_study.hpp"

using namespace m3d;

int main() {
  TileConfig cfg = makeSmallCacheTileConfig();
  // shrink for speed
  cfg.coreGates = 1200;
  cfg.coreRegs = 240;
  cfg.l3CtrlGates = 300;
  cfg.l3CtrlRegs = 60;
  FlowOptions opt;
  opt.maxFreqRounds = 1;
  opt.preRouteOpt = false;
  opt.postRouteOpt = false;
  const FlowOutput out = runFlowMacro3D(cfg, opt);
  std::cout << out.trace << "\n";

  const Netlist& nl = out.tile->netlist;
  std::map<std::string, int> reasons;
  int shown = 0;
  for (NetId n = 0; n < nl.numNets(); ++n) {
    const Net& net = nl.net(n);
    if (net.pins.size() < 2) continue;
    if (out.routes.nets[static_cast<std::size_t>(n)].routed) continue;
    // classify by pin layers
    std::string sig;
    for (const auto& p : net.pins) {
      sig += nl.pinLayer(p) + (nl.isDriverPin(p) ? "*" : "") + ",";
    }
    reasons[sig]++;
    if (shown < 10) {
      std::cout << "UNROUTED " << net.name << " pins=" << net.pins.size() << " layers=" << sig
                << "\n";
      for (const auto& p : net.pins) {
        const Point pos = nl.pinPosition(p);
        const int node = out.grid->pinNode(nl, p);
        std::cout << "   pin at " << dbuToUm(pos.x) << "," << dbuToUm(pos.y) << " layer "
                  << nl.pinLayer(p) << " gcell(" << out.grid->nodeX(node) << ","
                  << out.grid->nodeY(node) << "," << out.grid->nodeLayer(node) << ")\n";
      }
      ++shown;
    }
  }
  std::cout << "\nsignature histogram (top):\n";
  int c = 0;
  for (const auto& [sig, cnt] : reasons) {
    if (c++ > 12) break;
    std::cout << cnt << "  " << sig.substr(0, 120) << "\n";
  }
  return 0;
}
