#include <gtest/gtest.h>

#include "lib/library.hpp"
#include "lib/macro_projection.hpp"
#include "lib/sram_generator.hpp"
#include "lib/stdcell_factory.hpp"
#include "tech/combined_beol.hpp"

namespace m3d {
namespace {

class StdCellLibTest : public ::testing::Test {
 protected:
  StdCellLibTest() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)) {}
  TechNode tech_;
  Library lib_;
};

TEST_F(StdCellLibTest, ContainsCoreCells) {
  for (const char* name : {"INV_X1", "BUF_X8", "NAND2_X1", "NOR2_X2", "XOR2_X1", "MUX2_X1",
                           "AOI21_X1", "OAI21_X1", "DFF_X1", "FILLER_X1"}) {
    EXPECT_NE(lib_.findCell(name), kInvalidCellType) << name;
  }
  EXPECT_EQ(lib_.findCell("NONSENSE"), kInvalidCellType);
}

TEST_F(StdCellLibTest, FamilyNavigation) {
  const auto invs = lib_.family("INV");
  ASSERT_EQ(invs.size(), 5u);
  for (std::size_t i = 1; i < invs.size(); ++i) {
    EXPECT_GT(lib_.cell(invs[i]).driveStrength, lib_.cell(invs[i - 1]).driveStrength);
  }
  const CellTypeId x1 = lib_.findCell("INV_X1");
  const CellTypeId x2 = lib_.nextSizeUp(x1);
  EXPECT_EQ(lib_.cell(x2).name, "INV_X2");
  EXPECT_EQ(lib_.nextSizeDown(x2), x1);
  EXPECT_EQ(lib_.nextSizeDown(x1), kInvalidCellType);
  const CellTypeId x16 = lib_.findCell("INV_X16");
  EXPECT_EQ(lib_.nextSizeUp(x16), kInvalidCellType);
}

TEST_F(StdCellLibTest, DriveStrengthScalesElectricals) {
  const CellType& x1 = lib_.cell(lib_.findCell("INV_X1"));
  const CellType& x4 = lib_.cell(lib_.findCell("INV_X4"));
  EXPECT_NEAR(x1.arcs[0].driveRes / x4.arcs[0].driveRes, 4.0, 1e-9);
  EXPECT_NEAR(x4.pins[0].cap / x1.pins[0].cap, 4.0, 1e-9);
  EXPECT_GT(x4.width, x1.width);
  EXPECT_GT(x4.leakage, x1.leakage);
}

TEST_F(StdCellLibTest, Fo4DelayIsRealistic) {
  // FO4: an INV_X1 driving 4 INV_X1 input caps; 28 nm-class ~15-35 ps.
  const CellType& inv = lib_.cell(lib_.findCell("INV_X1"));
  const double load = 4.0 * inv.pins[0].cap;
  const double d = inv.arcs[0].intrinsic + inv.arcs[0].driveRes * load;
  EXPECT_GT(d, 10e-12);
  EXPECT_LT(d, 40e-12);
}

TEST_F(StdCellLibTest, DffStructure) {
  const CellType& dff = lib_.cell(lib_.findCell("DFF_X1"));
  EXPECT_TRUE(dff.isSequential());
  ASSERT_TRUE(dff.clockPin().has_value());
  EXPECT_TRUE(dff.pins[static_cast<std::size_t>(*dff.clockPin())].isClock);
  EXPECT_GT(dff.setup, 0.0);
  ASSERT_EQ(dff.arcs.size(), 1u);
  // The only arc is CK->Q.
  EXPECT_EQ(dff.pins[static_cast<std::size_t>(dff.arcs[0].fromPin)].name, "CK");
  EXPECT_EQ(dff.pins[static_cast<std::size_t>(dff.arcs[0].toPin)].name, "Q");
}

TEST_F(StdCellLibTest, CombArcsCoverAllInputs) {
  for (const char* name : {"NAND2_X1", "NOR2_X1", "AOI21_X1", "MUX2_X1"}) {
    const CellType& c = lib_.cell(lib_.findCell(name));
    int inputs = 0;
    for (const auto& p : c.pins) inputs += (p.dir == PinDir::kInput) ? 1 : 0;
    EXPECT_EQ(static_cast<int>(c.arcs.size()), inputs) << name;
  }
}

TEST_F(StdCellLibTest, BufferFamilyRegistered) {
  EXPECT_EQ(lib_.bufferFamily(), "BUF");
  EXPECT_FALSE(lib_.family("BUF").empty());
  EXPECT_NE(lib_.fillerCell(), kInvalidCellType);
  EXPECT_EQ(lib_.cell(lib_.fillerCell()).cls, CellClass::kFiller);
}

TEST_F(StdCellLibTest, WidthsAreSiteMultiples) {
  for (CellTypeId id = 0; id < lib_.numCells(); ++id) {
    const CellType& c = lib_.cell(id);
    EXPECT_EQ(c.width % tech_.siteWidth, 0) << c.name;
    EXPECT_EQ(c.height, tech_.rowHeight) << c.name;
  }
}

// ---------------------------------------------------------------------------

class SramTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SramTest, GeneratedMacroIsWellFormed) {
  const auto [words, bits] = GetParam();
  const TechNode tech = makeTech28(6);
  SramSpec spec;
  spec.name = "SRAM_T";
  spec.words = words;
  spec.bitsPerWord = bits;
  const CellType c = makeSramMacro(spec, tech);

  EXPECT_EQ(c.cls, CellClass::kMacro);
  EXPECT_GT(c.width, 0);
  EXPECT_GT(c.height, 0);
  EXPECT_EQ(c.width % tech.siteWidth, 0);
  EXPECT_EQ(c.height % tech.rowHeight, 0);

  // Pin budget: CLK + CE + WE + addr + D + Q.
  int addrBits = 0;
  while ((1 << addrBits) < words) ++addrBits;
  addrBits = std::max(addrBits, 1);
  EXPECT_EQ(static_cast<int>(c.pins.size()), 3 + addrBits + 2 * bits);
  ASSERT_TRUE(c.clockPin().has_value());
  ASSERT_TRUE(c.findPin("Q0").has_value());
  ASSERT_TRUE(c.findPin("D" + std::to_string(bits - 1)).has_value());

  // One CK->Q arc per output bit.
  EXPECT_EQ(static_cast<int>(c.arcs.size()), bits);
  EXPECT_GT(c.setup, 0.0);
  EXPECT_GT(c.leakage, 0.0);

  // Obstructions on M1..M4, covering the full macro.
  EXPECT_EQ(c.obstructions.size(), 4u);
  for (const auto& o : c.obstructions) {
    EXPECT_EQ(o.rect, Rect(0, 0, c.width, c.height));
  }
  // All pins inside the macro and on the top internal layer.
  for (const auto& p : c.pins) {
    EXPECT_TRUE(Rect(0, 0, c.width, c.height).contains(p.offset)) << p.name;
    EXPECT_EQ(p.layer, "M4") << p.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SramTest,
                         ::testing::Values(std::pair{256, 32}, std::pair{512, 32},
                                           std::pair{2048, 32}, std::pair{8192, 32},
                                           std::pair{4096, 64}, std::pair{1024, 16}));

TEST(Sram, CapacityScalesAreaAndAccessTime) {
  const TechNode tech = makeTech28(6);
  SramSpec small{.name = "S", .words = 512, .bitsPerWord = 32};
  SramSpec big{.name = "B", .words = 8192, .bitsPerWord = 32};
  const CellType cs = makeSramMacro(small, tech);
  const CellType cb = makeSramMacro(big, tech);
  EXPECT_GT(cb.boundingArea(), 8 * cs.boundingArea());
  EXPECT_GT(cb.arcs[0].intrinsic, cs.arcs[0].intrinsic);
  EXPECT_GT(cb.leakage, cs.leakage);
}

// ---------------------------------------------------------------------------

TEST(MacroProjection, ProjectAndUnprojectRoundTrip) {
  const TechNode tech = makeTech28(6);
  SramSpec spec{.name = "SRAM_P", .words = 1024, .bitsPerWord = 32};
  const CellType orig = makeSramMacro(spec, tech);
  const CellType proj = projectToMacroDie(orig, tech);

  EXPECT_EQ(proj.name, "SRAM_P_PROJ");
  // Substrate shrinks to filler size; bounding box is unchanged.
  EXPECT_EQ(proj.substrateWidth, tech.siteWidth);
  EXPECT_EQ(proj.substrateHeight, tech.rowHeight);
  EXPECT_EQ(proj.width, orig.width);
  EXPECT_EQ(proj.height, orig.height);
  // Pin coordinates unchanged, layers renamed (paper Sec. IV).
  ASSERT_EQ(proj.pins.size(), orig.pins.size());
  for (std::size_t i = 0; i < proj.pins.size(); ++i) {
    EXPECT_EQ(proj.pins[i].offset, orig.pins[i].offset);
    EXPECT_EQ(proj.pins[i].layer, toMacroDieLayerName(orig.pins[i].layer));
  }
  for (std::size_t i = 0; i < proj.obstructions.size(); ++i) {
    EXPECT_EQ(proj.obstructions[i].rect, orig.obstructions[i].rect);
    EXPECT_TRUE(isMacroDieLayerName(proj.obstructions[i].layer));
  }
  // Timing must be untouched by projection.
  ASSERT_EQ(proj.arcs.size(), orig.arcs.size());
  EXPECT_DOUBLE_EQ(proj.arcs[0].intrinsic, orig.arcs[0].intrinsic);

  const CellType back = unprojectFromMacroDie(proj);
  EXPECT_EQ(back.name, orig.name);
  EXPECT_EQ(back.substrateWidth, orig.substrateWidth);
  for (std::size_t i = 0; i < back.pins.size(); ++i) {
    EXPECT_EQ(back.pins[i].layer, orig.pins[i].layer);
  }
}

TEST(Library, DuplicatePinInterfacesForResize) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  // Every family member must share the pin interface (resize relies on it).
  for (const char* fam : {"INV", "BUF", "NAND2", "NOR2", "DFF"}) {
    const auto ids = lib.family(fam);
    ASSERT_FALSE(ids.empty());
    const CellType& first = lib.cell(ids.front());
    for (CellTypeId id : ids) {
      const CellType& c = lib.cell(id);
      ASSERT_EQ(c.pins.size(), first.pins.size());
      for (std::size_t p = 0; p < c.pins.size(); ++p) {
        EXPECT_EQ(c.pins[p].name, first.pins[p].name);
        EXPECT_EQ(c.pins[p].dir, first.pins[p].dir);
      }
    }
  }
}

}  // namespace
}  // namespace m3d
