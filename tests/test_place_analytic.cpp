/// \file test_place_analytic.cpp
/// Unit tests for the analytic (ePlace-style) global placer: the DCT/FFT
/// kernels, the Poisson density solve, the WA wirelength gradients (checked
/// against finite differences), and the end-to-end engine behind
/// PlacerOptions::engine == PlaceEngine::kAnalytic.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/units.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "place/analytic/density.hpp"
#include "place/analytic/fft.hpp"
#include "place/analytic/wirelength.hpp"
#include "place/legalizer.hpp"
#include "place/placer.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

TEST(PlaceAnalyticFft, CeilPow2) {
  EXPECT_EQ(place::ceilPow2(1), 1);
  EXPECT_EQ(place::ceilPow2(2), 2);
  EXPECT_EQ(place::ceilPow2(3), 4);
  EXPECT_EQ(place::ceilPow2(17), 32);
  EXPECT_EQ(place::ceilPow2(64), 64);
}

TEST(PlaceAnalyticFft, FftMatchesDft) {
  const int n = 16;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> a(n);
  for (auto& c : a) c = {dist(rng), dist(rng)};
  std::vector<std::complex<double>> f(a);
  place::fftPow2(f, /*inverse=*/false);
  for (int k = 0; k < n; ++k) {
    std::complex<double> ref{0.0, 0.0};
    for (int j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * k * j / n;
      ref += a[static_cast<std::size_t>(j)] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(f[static_cast<std::size_t>(k)].real(), ref.real(), 1e-10);
    EXPECT_NEAR(f[static_cast<std::size_t>(k)].imag(), ref.imag(), 1e-10);
  }
}

TEST(PlaceAnalyticFft, DctRoundTrip) {
  const int n = 32;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  const std::vector<double> orig(x);
  std::vector<std::complex<double>> scratch;
  place::dct2InPlace(x, scratch);
  place::idct2InPlace(x, scratch);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], orig[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST(PlaceAnalyticFft, Dct2dRoundTripAndThreadInvariance) {
  const int nx = 16, ny = 8;
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> grid(static_cast<std::size_t>(nx) * ny);
  for (auto& v : grid) v = dist(rng);
  const std::vector<double> orig(grid);

  std::vector<double> t1(grid), t8(grid);
  place::dct2d(t1, nx, ny, 1);
  place::dct2d(t8, nx, ny, 8);
  EXPECT_EQ(t1, t8) << "2D DCT must be bit-identical across thread counts";

  place::idct2d(t1, nx, ny, 2);
  for (std::size_t i = 0; i < orig.size(); ++i) EXPECT_NEAR(t1[i], orig[i], 1e-10);
}

TEST(PlaceAnalyticPoisson, SolveMatchesDirectStencil) {
  // applyNeumannLaplacian(solvePoissonDct(rho)) must reproduce -(rho - mean)
  // exactly (the solve divides by the discrete stencil eigenvalues).
  const int nx = 16, ny = 8;
  const double hx = 2.5, hy = 1.75;
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> dist(0.0, 3.0);
  std::vector<double> rho(static_cast<std::size_t>(nx) * ny);
  double mean = 0.0;
  for (auto& v : rho) {
    v = dist(rng);
    mean += v;
  }
  mean /= static_cast<double>(rho.size());

  const std::vector<double> psi = place::solvePoissonDct(rho, nx, ny, hx, hy, 2);
  const std::vector<double> lap = place::applyNeumannLaplacian(psi, nx, ny, hx, hy);
  for (std::size_t i = 0; i < rho.size(); ++i) {
    EXPECT_NEAR(lap[i], -(rho[i] - mean), 1e-9) << "bin " << i;
  }
}

TEST(PlaceAnalyticPoisson, UniformDensityHasZeroField) {
  const int nx = 8, ny = 8;
  std::vector<double> rho(static_cast<std::size_t>(nx) * ny, 4.0);
  const std::vector<double> psi = place::solvePoissonDct(rho, nx, ny, 1.0, 1.0, 1);
  for (double p : psi) EXPECT_NEAR(p, 0.0, 1e-12);
}

// ---------------------------------------------------------------------------

class PlaceAnalyticFixture : public ::testing::Test {
 protected:
  PlaceAnalyticFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  void buildCloud(int gates, int regs, Dbu dieUm) {
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    const NetId clk = nl_.addNet("clk");
    nl_.connectPort(clk, clkPort);
    Rng rng(11);
    CloudSpec spec;
    spec.prefix = "c";
    spec.numGates = gates;
    spec.numRegs = regs;
    spec.clockNet = clk;
    buildLogicCloud(nl_, rng, spec);

    fp_.die = Rect{0, 0, snapUp(umToDbu(static_cast<double>(dieUm)), tech_.siteWidth),
                   snapUp(umToDbu(static_cast<double>(dieUm)), tech_.rowHeight)};
    fp_.rowHeight = tech_.rowHeight;
    fp_.siteWidth = tech_.siteWidth;
    assignPorts(nl_, fp_.die);
  }

  /// Movable filter identical to the engines'.
  void collectMovable() {
    varOf_.assign(static_cast<std::size_t>(nl_.numInstances()), -1);
    movable_.clear();
    for (InstId i = 0; i < nl_.numInstances(); ++i) {
      if (nl_.instance(i).fixed || nl_.cellOf(i).isMacro()) continue;
      varOf_[static_cast<std::size_t>(i)] = static_cast<int>(movable_.size());
      movable_.push_back(i);
    }
  }

  /// Deterministic scatter into the die interior.
  void scatterPositions(std::vector<double>* x, std::vector<double>* y, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dx(0.0, dbuToUm(fp_.die.xhi) * 0.9);
    std::uniform_real_distribution<double> dy(0.0, dbuToUm(fp_.die.yhi) * 0.9);
    x->resize(movable_.size());
    y->resize(movable_.size());
    for (std::size_t v = 0; v < movable_.size(); ++v) {
      (*x)[v] = dx(rng);
      (*y)[v] = dy(rng);
    }
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Floorplan fp_;
  std::vector<InstId> movable_;
  std::vector<int> varOf_;
};

TEST_F(PlaceAnalyticFixture, WirelengthGradientMatchesFiniteDifference) {
  buildCloud(120, 20, 50);
  collectMovable();
  place::WirelengthModel wl(nl_, varOf_, static_cast<int>(movable_.size()),
                            /*clockNetWeight=*/2.0, /*splitNetWeight=*/1.5);
  std::vector<double> x, y;
  scatterPositions(&x, &y, 3);

  const double gamma = 4.0;
  wl.evaluate(x, y, gamma, 1);
  std::vector<double> gx(wl.gradX()), gy(wl.gradY());

  // Central differences on a sample of variables (full sweep is O(n^2)).
  const double h = 1e-5;
  for (std::size_t v = 0; v < movable_.size(); v += 17) {
    double save = x[v];
    x[v] = save + h;
    const double fp1 = wl.evaluate(x, y, gamma, 1);
    x[v] = save - h;
    const double fm1 = wl.evaluate(x, y, gamma, 1);
    x[v] = save;
    const double fd = (fp1 - fm1) / (2.0 * h);
    EXPECT_NEAR(gx[v], fd, 1e-4 * std::max(1.0, std::abs(fd))) << "d/dx of var " << v;

    save = y[v];
    y[v] = save + h;
    const double fp2 = wl.evaluate(x, y, gamma, 1);
    y[v] = save - h;
    const double fm2 = wl.evaluate(x, y, gamma, 1);
    y[v] = save;
    const double fdY = (fp2 - fm2) / (2.0 * h);
    EXPECT_NEAR(gy[v], fdY, 1e-4 * std::max(1.0, std::abs(fdY))) << "d/dy of var " << v;
  }
}

TEST_F(PlaceAnalyticFixture, WirelengthBoundsAndThreadInvariance) {
  buildCloud(200, 40, 60);
  collectMovable();
  place::WirelengthModel wl(nl_, varOf_, static_cast<int>(movable_.size()), 1.0, 1.0);
  std::vector<double> x, y;
  scatterPositions(&x, &y, 5);

  // The weighted average under-estimates the max pin (and over-estimates the
  // min), so smoothed WL lower-bounds the exact HPWL and converges to it
  // from below as gamma -> 0.
  const double exact = wl.hpwl(x, y, 1);
  const double smoothCoarse = wl.evaluate(x, y, /*gamma=*/8.0, 1);
  const double smoothFine = wl.evaluate(x, y, /*gamma=*/0.05, 1);
  EXPECT_LE(smoothCoarse, exact);
  EXPECT_LE(smoothFine, exact);
  EXPECT_LT(exact - smoothFine, exact - smoothCoarse);
  EXPECT_NEAR(smoothFine, exact, 0.02 * exact);

  // Bit-identical evaluation and gradients across thread counts.
  const double w1 = wl.evaluate(x, y, 2.0, 1);
  std::vector<double> gx1(wl.gradX()), gy1(wl.gradY());
  const double w8 = wl.evaluate(x, y, 2.0, 8);
  EXPECT_EQ(w1, w8);
  EXPECT_EQ(gx1, wl.gradX());
  EXPECT_EQ(gy1, wl.gradY());
}

TEST_F(PlaceAnalyticFixture, DensityGradientPushesApartAndThreadInvariant) {
  buildCloud(150, 30, 60);
  collectMovable();
  place::DensityGrid dg(nl_, fp_, movable_, /*targetDensity=*/0.9, 1);

  // Pile every cell into one spot: overflow must be high and the field must
  // push cells away from the pile (non-zero gradients).
  std::vector<double> x(movable_.size(), dbuToUm(fp_.die.xhi) * 0.5);
  std::vector<double> y(movable_.size(), dbuToUm(fp_.die.yhi) * 0.5);
  dg.update(x, y);
  const double piled = dg.overflow();
  EXPECT_GT(piled, 0.2);
  double gnorm = 0.0;
  for (std::size_t v = 0; v < movable_.size(); ++v) {
    gnorm += std::abs(dg.gradX()[v]) + std::abs(dg.gradY()[v]);
  }
  EXPECT_GT(gnorm, 0.0);

  // An even spread overflows (much) less.
  scatterPositions(&x, &y, 13);
  EXPECT_LT(dg.measureOverflow(x, y), piled);

  // Bit-identity across thread counts.
  dg.update(x, y);
  std::vector<double> gx1(dg.gradX()), gy1(dg.gradY());
  const double of1 = dg.overflow();
  place::DensityGrid dg8(nl_, fp_, movable_, 0.9, 8);
  dg8.update(x, y);
  EXPECT_EQ(of1, dg8.overflow());
  EXPECT_EQ(gx1, dg8.gradX());
  EXPECT_EQ(gy1, dg8.gradY());
}

TEST_F(PlaceAnalyticFixture, EngineProducesLegalPlacementBeatingRandom) {
  buildCloud(600, 100, 80);
  std::mt19937_64 rng(13);
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    nl_.instance(i).pos =
        Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.xhi)),
              static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.yhi))};
  }
  legalize(nl_, fp_);
  const std::int64_t randomHpwl = nl_.totalHpwl();

  PlacerOptions opt;
  opt.engine = PlaceEngine::kAnalytic;
  const PlaceResult pr = globalPlace(nl_, fp_, opt);
  EXPECT_TRUE(pr.success);
  EXPECT_EQ(pr.engine, PlaceEngine::kAnalytic);
  EXPECT_GT(pr.iterations, 0);
  EXPECT_EQ(checkLegality(nl_, fp_), "");
  EXPECT_LT(nl_.totalHpwl(), randomHpwl / 2) << "analytic placer should beat random by >2x";
  // The optimizer trades density for wirelength; post-legalization the
  // placement must still be near the overflow target rather than clustered.
  EXPECT_LE(pr.overflow, 2.0 * opt.analytic.targetOverflow)
      << "final placement should be spread to near the density target";
}

TEST_F(PlaceAnalyticFixture, EngineRespectsFixedInstancesAndBlockages) {
  buildCloud(300, 50, 70);
  const InstId macro = nl_.addInstance("fixed_block", lib_.findCell("DFF_X1"));
  nl_.instance(macro).pos = Point{umToDbu(30), snapUp(umToDbu(30), tech_.rowHeight)};
  nl_.instance(macro).fixed = true;
  const Point before = nl_.instance(macro).pos;
  fp_.blockages.push_back({Rect{0, 0, fp_.die.xhi / 4, fp_.die.yhi}, 1.0});

  PlacerOptions opt;
  opt.engine = PlaceEngine::kAnalytic;
  const PlaceResult pr = globalPlace(nl_, fp_, opt);
  EXPECT_TRUE(pr.success);
  EXPECT_EQ(nl_.instance(macro).pos, before);
  EXPECT_EQ(checkLegality(nl_, fp_), "");
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    if (nl_.instance(i).fixed) continue;
    EXPECT_GE(nl_.instance(i).pos.x, fp_.die.xhi / 4) << nl_.instance(i).name;
  }
}

TEST(PlaceAnalyticEngine, NameParseRoundTrip) {
  EXPECT_STREQ(placeEngineName(PlaceEngine::kB2B), "b2b");
  EXPECT_STREQ(placeEngineName(PlaceEngine::kAnalytic), "analytic");
  PlaceEngine e = PlaceEngine::kB2B;
  EXPECT_TRUE(parsePlaceEngine("analytic", e));
  EXPECT_EQ(e, PlaceEngine::kAnalytic);
  EXPECT_TRUE(parsePlaceEngine("b2b", e));
  EXPECT_EQ(e, PlaceEngine::kB2B);
  e = PlaceEngine::kAnalytic;
  EXPECT_FALSE(parsePlaceEngine("quadratic", e));
  EXPECT_EQ(e, PlaceEngine::kAnalytic) << "failed parse must not clobber the output";
}

}  // namespace
}  // namespace m3d
