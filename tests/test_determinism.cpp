#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <vector>

#include "core/macro3d.hpp"
#include "extract/extraction.hpp"
#include "flows/flows.hpp"
#include "floorplan/floorplan.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "place/placer.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"
#include "verify/verify.hpp"

/// Determinism contract of the parallel execution layer: every stage that
/// runs on the thread pool (placer spring build, router batch search, STA
/// level sweeps, full flows) must produce bit-identical results at any
/// thread count. Thread counts 2 and 8 oversubscribe small machines; that
/// is intentional -- the schedule must not matter.

namespace m3d {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// Placer

/// Builds the identical cloud + floorplan for every call.
void buildPlacerProblem(const TechNode& tech, Netlist& nl, Floorplan& fp) {
  const PortId clkPort = nl.addPort("clk", PinDir::kInput, Side::kWest, true);
  const NetId clk = nl.addNet("clk");
  nl.connectPort(clk, clkPort);
  Rng rng(11);
  CloudSpec spec;
  spec.prefix = "c";
  spec.numGates = 400;
  spec.numRegs = 80;
  spec.clockNet = clk;
  buildLogicCloud(nl, rng, spec);

  fp.die = Rect{0, 0, snapUp(umToDbu(70.0), tech.siteWidth),
                snapUp(umToDbu(70.0), tech.rowHeight)};
  fp.rowHeight = tech.rowHeight;
  fp.siteWidth = tech.siteWidth;
  assignPorts(nl, fp.die);
}

TEST(PlacerDeterminism, BitIdenticalAcrossThreadCounts) {
  const TechNode tech = makeTech28(6);

  std::vector<Point> reference;
  double referenceHpwl = 0.0;
  for (const int threads : kThreadCounts) {
    Library lib = makeStdCellLib(tech);
    Netlist nl(&lib);
    Floorplan fp;
    buildPlacerProblem(tech, nl, fp);

    PlacerOptions popt;
    popt.numThreads = threads;
    const PlaceResult pr = globalPlace(nl, fp, popt);
    ASSERT_TRUE(pr.success);

    if (threads == kThreadCounts[0]) {
      for (InstId i = 0; i < nl.numInstances(); ++i) reference.push_back(nl.instance(i).pos);
      referenceHpwl = pr.hpwlUm;
      continue;
    }
    ASSERT_EQ(nl.numInstances(), static_cast<InstId>(reference.size()));
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      ASSERT_EQ(nl.instance(i).pos, reference[static_cast<std::size_t>(i)])
          << "instance " << nl.instance(i).name << " moved at numThreads=" << threads;
    }
    EXPECT_EQ(pr.hpwlUm, referenceHpwl) << "HPWL drifted at numThreads=" << threads;
  }
}

// The analytic (ePlace-style) engine runs exp-heavy wirelength passes, FFT
// rows and per-cell gathers on the pool; the whole Nesterov trajectory — and
// therefore the legalized placement — must be schedule-independent.
TEST(PlacerDeterminism, AnalyticEngineBitIdenticalAcrossThreadCounts) {
  const TechNode tech = makeTech28(6);

  std::vector<Point> reference;
  double referenceHpwl = 0.0;
  double referenceOverflow = 0.0;
  int referenceIters = 0;
  for (const int threads : kThreadCounts) {
    Library lib = makeStdCellLib(tech);
    Netlist nl(&lib);
    Floorplan fp;
    buildPlacerProblem(tech, nl, fp);

    PlacerOptions popt;
    popt.engine = PlaceEngine::kAnalytic;
    popt.numThreads = threads;
    const PlaceResult pr = globalPlace(nl, fp, popt);
    ASSERT_TRUE(pr.success);

    if (threads == kThreadCounts[0]) {
      for (InstId i = 0; i < nl.numInstances(); ++i) reference.push_back(nl.instance(i).pos);
      referenceHpwl = pr.hpwlUm;
      referenceOverflow = pr.overflow;
      referenceIters = pr.iterations;
      continue;
    }
    ASSERT_EQ(nl.numInstances(), static_cast<InstId>(reference.size()));
    for (InstId i = 0; i < nl.numInstances(); ++i) {
      ASSERT_EQ(nl.instance(i).pos, reference[static_cast<std::size_t>(i)])
          << "instance " << nl.instance(i).name << " moved at numThreads=" << threads;
    }
    EXPECT_EQ(pr.hpwlUm, referenceHpwl) << "HPWL drifted at numThreads=" << threads;
    EXPECT_EQ(pr.overflow, referenceOverflow) << "overflow drifted at numThreads=" << threads;
    EXPECT_EQ(pr.iterations, referenceIters) << "iteration count drifted at numThreads=" << threads;
  }
}

TEST(PlacerDeterminism, TotalHpwlMatchesSequentialAtAnyThreadCount) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  Floorplan fp;
  buildPlacerProblem(tech, nl, fp);
  std::mt19937_64 rng(17);
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    nl.instance(i).pos = Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp.die.xhi)),
                               static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp.die.yhi))};
  }
  const std::int64_t seq = nl.totalHpwl(1);
  EXPECT_EQ(nl.totalHpwl(2), seq);
  EXPECT_EQ(nl.totalHpwl(8), seq);
  EXPECT_EQ(nl.totalHpwl(0), seq);  // auto
}

// ---------------------------------------------------------------------------
// Router

/// A deterministic mix of 2- to 4-pin nets over randomly scattered INVs,
/// dense enough for the negotiation loop to take several iterations.
class RouterProblem {
 public:
  RouterProblem() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {
    std::mt19937_64 rng(123);
    constexpr int kInsts = 80;
    std::vector<InstId> insts;
    for (int i = 0; i < kInsts; ++i) {
      const InstId id = nl_.addInstance("g" + std::to_string(i), lib_.findCell("INV_X1"));
      nl_.instance(id).pos = Point{umToDbu(2.0 + static_cast<double>(rng() % 95)),
                                   umToDbu(2.0 + static_cast<double>(rng() % 95))};
      insts.push_back(id);
    }
    // Deterministic shuffle of the sink pool (each INV has one A pin).
    std::vector<int> sinks(kInsts);
    for (int i = 0; i < kInsts; ++i) sinks[static_cast<std::size_t>(i)] = i;
    for (int i = kInsts - 1; i > 0; --i) {
      const int j = static_cast<int>(rng() % static_cast<std::uint64_t>(i + 1));
      std::swap(sinks[static_cast<std::size_t>(i)], sinks[static_cast<std::size_t>(j)]);
    }
    std::size_t p = 0;
    for (int i = 0; i < kInsts && p < sinks.size(); ++i) {
      const int want = 1 + static_cast<int>(rng() % 3);
      const NetId n = nl_.addNet("n" + std::to_string(i));
      nl_.connect(n, insts[static_cast<std::size_t>(i)], "Y");
      int got = 0;
      while (got < want && p < sinks.size()) {
        const int s = sinks[p++];
        if (s == i) continue;  // no self-loop
        nl_.connect(n, insts[static_cast<std::size_t>(s)], "A");
        ++got;
      }
    }
  }

  RoutingResult route(int threads) {
    RouteGrid grid(nl_, die_, tech_.beol);
    RouterOptions ropt;
    ropt.numThreads = threads;
    return routeDesign(nl_, grid, ropt);
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Rect die_{0, 0, umToDbu(100), umToDbu(100)};
};

void expectRoutesEqual(const RoutingResult& a, const RoutingResult& b, int threads) {
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    ASSERT_EQ(a.nets[n].routed, b.nets[n].routed) << "net " << n << " threads=" << threads;
    ASSERT_EQ(a.nets[n].segs.size(), b.nets[n].segs.size())
        << "net " << n << " threads=" << threads;
    for (std::size_t s = 0; s < a.nets[n].segs.size(); ++s) {
      const RouteSeg& x = a.nets[n].segs[s];
      const RouteSeg& y = b.nets[n].segs[s];
      ASSERT_TRUE(x.isVia == y.isVia && x.layer == y.layer && x.fromNode == y.fromNode &&
                  x.toNode == y.toNode)
          << "net " << n << " seg " << s << " differs at threads=" << threads;
    }
  }
  EXPECT_EQ(a.totalWirelengthUm, b.totalWirelengthUm);
  EXPECT_EQ(a.wirelengthPerLayerUm, b.wirelengthPerLayerUm);
  EXPECT_EQ(a.viasPerCut, b.viasPerCut);
  EXPECT_EQ(a.f2fBumps, b.f2fBumps);
  EXPECT_EQ(a.overflowedEdges, b.overflowedEdges);
  EXPECT_EQ(a.totalOverflow, b.totalOverflow);
  EXPECT_EQ(a.unroutedNets, b.unroutedNets);
  EXPECT_EQ(a.iterationsUsed, b.iterationsUsed);
  // Search-kernel statistics are part of the determinism contract: pops and
  // relaxations happen inside per-net searches whose work does not depend
  // on the schedule, and the totals are integer sums over nets.
  EXPECT_EQ(a.nodesPopped, b.nodesPopped);
  EXPECT_EQ(a.nodesRelaxed, b.nodesRelaxed);
  EXPECT_EQ(a.windowFallbacks, b.windowFallbacks);
  // Region-parallel and ECO statistics are derived from the same
  // deterministic decomposition, so they are part of the contract too.
  EXPECT_EQ(a.regionCount, b.regionCount);
  EXPECT_EQ(a.regionLocalNets, b.regionLocalNets);
  EXPECT_EQ(a.regionCrossNets, b.regionCrossNets);
  EXPECT_EQ(a.ecoDirtyGcells, b.ecoDirtyGcells);
  EXPECT_EQ(a.ecoNetsReused, b.ecoNetsReused);
  EXPECT_EQ(a.ecoNetsRipped, b.ecoNetsRipped);
}

TEST(RouterDeterminism, BitIdenticalAcrossThreadCounts) {
  RouterProblem problem;
  const RoutingResult ref = problem.route(1);
  EXPECT_EQ(ref.unroutedNets, 0);
  for (const int threads : {2, 8}) {
    const RoutingResult r = problem.route(threads);
    expectRoutesEqual(ref, r, threads);
  }
}

// Every search-kernel configuration -- the overhauled default (frozen cost
// caches + windowed A* + bucket open list), the pre-overhaul ablation
// (recompute + full grid + binary heap), a mixed setup with a tight window,
// the region-partitioned scheduler, and timing-driven ordering/costing --
// must be bit-identical at any thread count.
TEST(RouterDeterminism, KernelConfigsBitIdenticalAcrossThreadCounts) {
  struct Kernel {
    bool costCache;
    int halo;
    bool bucketQueue;
    int regionSize;
    bool timingDriven;
  };
  const Kernel kernels[] = {
      {true, 1, true, 0, false},     // shipped default
      {false, -1, false, 0, false},  // pre-overhaul: recompute, full grid, heap
      {true, 0, true, 0, false},     // degenerate halo exercising the ladder
      {true, 1, true, 8, false},     // region-partitioned negotiation
      {true, 1, true, 0, true},      // timing-driven order + cost blend
      {true, 1, true, 8, true},      // partitioned + timing-driven combined
  };
  RouterProblem problem;
  // Synthetic but deterministic per-net criticality (a function of the net
  // id alone) -- the determinism contract must hold for any criticality
  // vector, so the test does not need a real STA here.
  std::vector<double> crit(static_cast<std::size_t>(problem.nl_.numNets()));
  for (std::size_t n = 0; n < crit.size(); ++n) {
    crit[n] = static_cast<double>((n * 37) % 100) / 100.0;
  }
  for (const Kernel& k : kernels) {
    auto routeWith = [&](int threads) {
      RouteGrid grid(problem.nl_, problem.die_, problem.tech_.beol);
      RouterOptions ropt;
      ropt.numThreads = threads;
      ropt.costCache = k.costCache;
      ropt.searchHaloGcells = k.halo;
      ropt.bucketQueue = k.bucketQueue;
      ropt.regionSizeGcells = k.regionSize;
      ropt.timingDriven = k.timingDriven;
      if (k.timingDriven) ropt.netCriticality = crit;
      return routeDesign(problem.nl_, grid, ropt);
    };
    const RoutingResult ref = routeWith(1);
    EXPECT_EQ(ref.unroutedNets, 0);
    if (k.regionSize > 0) EXPECT_GT(ref.regionCount, 1);
    for (const int threads : {2, 8}) {
      const RoutingResult r = routeWith(threads);
      expectRoutesEqual(ref, r, threads);
    }
  }
}

TEST(RouterDeterminism, BatchSizeOneMatchesSequentialNegotiation) {
  // batchSize=1 commits after every net -- the historical fully sequential
  // algorithm. It is a *different* deterministic algorithm than batched
  // routing, but must itself be thread-count independent.
  RouterProblem problem;
  auto routeWith = [&](int threads) {
    RouteGrid grid(problem.nl_, problem.die_, problem.tech_.beol);
    RouterOptions ropt;
    ropt.numThreads = threads;
    ropt.batchSize = 1;
    return routeDesign(problem.nl_, grid, ropt);
  };
  const RoutingResult ref = routeWith(1);
  const RoutingResult par = routeWith(8);
  expectRoutesEqual(ref, par, 8);
}

// ---------------------------------------------------------------------------
// STA

/// Cloud with data ports and non-trivial wire parasitics.
class StaProblem {
 public:
  StaProblem() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    const NetId clk = nl_.addNet("clk");
    nl_.connectPort(clk, clkPort);
    const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
    const NetId nIn = nl_.addNet("n_in");
    nl_.connectPort(nIn, in);
    const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);
    const NetId nOut = nl_.addNet("n_out");
    nl_.connectPort(nOut, out);

    Rng rng(29);
    CloudSpec spec;
    spec.prefix = "s";
    spec.numGates = 500;
    spec.numRegs = 90;
    spec.clockNet = clk;
    spec.consumeNets = {nIn};
    spec.driveNets = {nOut};
    buildLogicCloud(nl_, rng, spec);

    const Rect die{0, 0, umToDbu(80), umToDbu(80)};
    assignPorts(nl_, die);
    std::mt19937_64 prng(31);
    for (InstId i = 0; i < nl_.numInstances(); ++i) {
      nl_.instance(i).pos = Point{static_cast<Dbu>(prng() % static_cast<std::uint64_t>(die.xhi)),
                                  static_cast<Dbu>(prng() % static_cast<std::uint64_t>(die.yhi))};
    }
    paras_ = estimateDesign(nl_, EstimationOptions{});
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  std::vector<NetParasitics> paras_;
};

TEST(StaDeterminism, BitIdenticalAcrossThreadCounts) {
  StaProblem problem;
  const double period = 1.5e-9;

  const Sta ref(problem.nl_, problem.paras_, nullptr, kTypicalCorner, 1);
  const std::vector<double> refArrivals = ref.portArrivals(period);
  const double refWns = ref.worstSlack(period);
  const double refMinPeriod = ref.findMinPeriod();
  const double refHold = ref.worstHoldSlack();

  for (const int threads : {2, 8, 0}) {
    const Sta sta(problem.nl_, problem.paras_, nullptr, kTypicalCorner, threads);
    const std::vector<double> arrivals = sta.portArrivals(period);
    ASSERT_EQ(arrivals.size(), refArrivals.size());
    for (std::size_t p = 0; p < arrivals.size(); ++p) {
      EXPECT_EQ(arrivals[p], refArrivals[p]) << "port " << p << " threads=" << threads;
    }
    EXPECT_EQ(sta.worstSlack(period), refWns) << "threads=" << threads;
    EXPECT_EQ(sta.findMinPeriod(), refMinPeriod) << "threads=" << threads;
    EXPECT_EQ(sta.worstHoldSlack(), refHold) << "threads=" << threads;
  }
}

TEST(StaDeterminism, CriticalPathStableAcrossThreadCounts) {
  StaProblem problem;
  const Sta s1(problem.nl_, problem.paras_, nullptr, kTypicalCorner, 1);
  const Sta s8(problem.nl_, problem.paras_, nullptr, kTypicalCorner, 8);
  const TimingReport r1 = s1.analyze(1e-9);
  const TimingReport r8 = s8.analyze(1e-9);
  EXPECT_EQ(r1.wns, r8.wns);
  EXPECT_EQ(r1.tns, r8.tns);
  EXPECT_EQ(r1.failingEndpoints, r8.failingEndpoints);
  EXPECT_EQ(r1.critEndpointName, r8.critEndpointName);
  ASSERT_EQ(r1.criticalPath.size(), r8.criticalPath.size());
  for (std::size_t i = 0; i < r1.criticalPath.size(); ++i) {
    EXPECT_EQ(r1.criticalPath[i].arrival, r8.criticalPath[i].arrival) << "step " << i;
  }
}

// ---------------------------------------------------------------------------
// Full flow (named Flow* so it carries the "slow" ctest label)

TileConfig tinyConfig() {
  TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

void expectMetricsEqual(const DesignMetrics& a, const DesignMetrics& b, int threads) {
  EXPECT_EQ(a.fclkMhz, b.fclkMhz) << "threads=" << threads;
  EXPECT_EQ(a.minPeriodNs, b.minPeriodNs) << "threads=" << threads;
  EXPECT_EQ(a.emeanFj, b.emeanFj) << "threads=" << threads;
  EXPECT_EQ(a.powerMw, b.powerMw) << "threads=" << threads;
  EXPECT_EQ(a.footprintMm2, b.footprintMm2) << "threads=" << threads;
  EXPECT_EQ(a.logicCellAreaMm2, b.logicCellAreaMm2) << "threads=" << threads;
  EXPECT_EQ(a.totalWirelengthM, b.totalWirelengthM) << "threads=" << threads;
  EXPECT_EQ(a.wirelengthLogicDieM, b.wirelengthLogicDieM) << "threads=" << threads;
  EXPECT_EQ(a.wirelengthMacroDieM, b.wirelengthMacroDieM) << "threads=" << threads;
  EXPECT_EQ(a.f2fBumps, b.f2fBumps) << "threads=" << threads;
  EXPECT_EQ(a.cpinNf, b.cpinNf) << "threads=" << threads;
  EXPECT_EQ(a.cwireNf, b.cwireNf) << "threads=" << threads;
  EXPECT_EQ(a.clockTreeDepth, b.clockTreeDepth) << "threads=" << threads;
  EXPECT_EQ(a.clockSkewPs, b.clockSkewPs) << "threads=" << threads;
  EXPECT_EQ(a.critPathWirelengthMm, b.critPathWirelengthMm) << "threads=" << threads;
  EXPECT_EQ(a.metalAreaMm2, b.metalAreaMm2) << "threads=" << threads;
  EXPECT_EQ(a.overflowedEdges, b.overflowedEdges) << "threads=" << threads;
  EXPECT_EQ(a.unroutedNets, b.unroutedNets) << "threads=" << threads;
  EXPECT_EQ(a.verifyViolations, b.verifyViolations) << "threads=" << threads;
  EXPECT_EQ(a.verifyWarnings, b.verifyWarnings) << "threads=" << threads;
  EXPECT_EQ(a.f2fBumpCount, b.f2fBumpCount) << "threads=" << threads;
  EXPECT_EQ(a.legalizeAvgDispUm, b.legalizeAvgDispUm) << "threads=" << threads;
  EXPECT_EQ(a.placeHpwlMm, b.placeHpwlMm) << "threads=" << threads;
  EXPECT_EQ(a.placeEngine, b.placeEngine) << "threads=" << threads;
  EXPECT_EQ(a.placeOverflow, b.placeOverflow) << "threads=" << threads;
  EXPECT_EQ(a.placeIterations, b.placeIterations) << "threads=" << threads;
  EXPECT_EQ(a.cellsResized, b.cellsResized) << "threads=" << threads;
  EXPECT_EQ(a.buffersInserted, b.buffersInserted) << "threads=" << threads;
}

TEST(FlowDeterminism, Macro3dBitIdenticalAcrossThreadCounts) {
  auto runAt = [](int threads) {
    FlowOptions opt;
    opt.maxFreqRounds = 2;
    opt.optBase.maxPasses = 6;
    opt.numThreads = threads;
    return runFlowMacro3D(tinyConfig(), opt);
  };
  const FlowOutput ref = runAt(1);
  EXPECT_EQ(ref.metrics.unroutedNets, 0);
  for (const int threads : {2, 8}) {
    const FlowOutput out = runAt(threads);
    expectMetricsEqual(ref.metrics, out.metrics, threads);
    expectRoutesEqual(ref.routes, out.routes, threads);
    // Placement bit-identity: every instance at the same position.
    const Netlist& a = ref.tile->netlist;
    const Netlist& b = out.tile->netlist;
    ASSERT_EQ(a.numInstances(), b.numInstances());
    for (InstId i = 0; i < a.numInstances(); ++i) {
      ASSERT_EQ(a.instance(i).pos, b.instance(i).pos)
          << a.instance(i).name << " threads=" << threads;
    }
    // Signoff verification bit-identity: the whole structured report
    // (violation list, counts, recomputed oracles) must match, not just
    // the scalar metrics.
    EXPECT_EQ(ref.verify, out.verify) << "threads=" << threads;
  }
}

// The verifier itself (not just the flow driving it) must be bit-identical
// at any thread count when re-run standalone over the same committed design.
TEST(FlowDeterminism, VerifyReportBitIdenticalAcrossThreadCounts) {
  FlowOptions opt;
  opt.maxFreqRounds = 2;
  opt.optBase.maxPasses = 6;
  const FlowOutput out = runFlowMacro3D(tinyConfig(), opt);
  VerifyOptions vopt;
  vopt.numThreads = 1;
  const VerifyReport ref =
      verifyDesign(out.tile->netlist, out.fp, *out.grid, out.routes, vopt);
  for (const int threads : {2, 8}) {
    vopt.numThreads = threads;
    const VerifyReport rep =
        verifyDesign(out.tile->netlist, out.fp, *out.grid, out.routes, vopt);
    EXPECT_EQ(ref, rep) << "threads=" << threads;
  }
}

// ECO determinism: a macro resize (bitcellUm2 bump) changes the netlist, so
// a warm stage cache from the pre-ECO design must not reuse any stage, and
// the incremental re-run must stay bit-identical to a cold run of the
// modified design at any thread count. Because stage keys exclude thread
// counts, the 2- and 8-thread ECO runs restore the checkpoints the 1-thread
// run wrote — exercising the restore path under the same bit-identity bar.
TEST(FlowDeterminism, EcoMacroResizeBitIdenticalToColdRunAcrossThreads) {
  namespace fs = std::filesystem;
  const std::string dir = (fs::temp_directory_path() / "m3d_det_eco_resize").string();
  fs::remove_all(dir);

  FlowOptions base;
  base.maxFreqRounds = 2;
  base.optBase.maxPasses = 6;
  base.checkpointDir = dir;
  (void)runFlowMacro3D(tinyConfig(), base);  // warm the cache with the pre-ECO design

  TileConfig eco = tinyConfig();
  eco.bitcellUm2 *= 1.1;  // resize every SRAM macro

  FlowOptions coldOpt = base;
  coldOpt.checkpointDir.clear();
  const FlowOutput ref = runFlowMacro3D(eco, coldOpt);

  for (const int threads : kThreadCounts) {
    FlowOptions opt = base;
    opt.numThreads = threads;
    const FlowOutput out = runFlowMacro3D(eco, opt);
    expectMetricsEqual(ref.metrics, out.metrics, threads);
    EXPECT_EQ(ref.verify, out.verify) << "threads=" << threads;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace m3d
