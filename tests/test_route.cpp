#include <gtest/gtest.h>

#include "lib/sram_generator.hpp"
#include "lib/macro_projection.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/netlist.hpp"
#include "route/route_grid.hpp"
#include "route/router.hpp"
#include "tech/combined_beol.hpp"

namespace m3d {
namespace {

class RouteFixture : public ::testing::Test {
 protected:
  RouteFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  InstId addInvAt(const std::string& name, Dbu xUm, Dbu yUm) {
    const InstId i = nl_.addInstance(name, lib_.findCell("INV_X1"));
    nl_.instance(i).pos = Point{umToDbu(static_cast<double>(xUm)), umToDbu(static_cast<double>(yUm))};
    return i;
  }

  NetId connect2(InstId a, InstId b) {
    const NetId n = nl_.addNet("n" + std::to_string(nl_.numNets()));
    nl_.connect(n, a, "Y");
    nl_.connect(n, b, "A");
    return n;
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Rect die_{0, 0, umToDbu(100), umToDbu(100)};
};

TEST_F(RouteFixture, GridGeometry) {
  const RouteGrid grid(nl_, die_, tech_.beol);
  EXPECT_EQ(grid.nx(), 25);  // 100um / 4um
  EXPECT_EQ(grid.ny(), 25);
  EXPECT_EQ(grid.numLayers(), 6);
  EXPECT_EQ(grid.numNodes(), 25 * 25 * 6);
  EXPECT_EQ(grid.f2fCutLayer(), -1);

  const int node = grid.nodeId(3, 7, 2);
  EXPECT_EQ(grid.nodeX(node), 3);
  EXPECT_EQ(grid.nodeY(node), 7);
  EXPECT_EQ(grid.nodeLayer(node), 2);
}

TEST_F(RouteFixture, WireCapacitiesFollowPitch) {
  const RouteGrid grid(nl_, die_, tech_.beol);
  // M2 (vertical, 0.1um pitch): 4um/0.1um * 0.8 = 32 tracks.
  EXPECT_EQ(grid.wireCap(grid.wireEdgeId(5, 5, 1)), 32);
  // M1 gets the pin-access derate (0.3): 12 tracks.
  EXPECT_EQ(grid.wireCap(grid.wireEdgeId(5, 5, 0)), 12);
  // M5 (0.14um pitch, 1.5x layer): 22 tracks.
  EXPECT_EQ(grid.wireCap(grid.wireEdgeId(5, 5, 4)), 22);
  // Boundary edges have zero capacity (horizontal layer, last column).
  EXPECT_EQ(grid.wireCap(grid.wireEdgeId(24, 5, 0)), 0);
}

TEST_F(RouteFixture, TwoPinNetRoutes) {
  const InstId a = addInvAt("a", 10, 10);
  const InstId b = addInvAt("b", 80, 70);
  connect2(a, b);
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult r = routeDesign(nl_, grid);
  EXPECT_EQ(r.unroutedNets, 0);
  EXPECT_EQ(r.overflowedEdges, 0);
  ASSERT_TRUE(r.nets[0].routed);
  EXPECT_FALSE(r.nets[0].segs.empty());
  // Wirelength at least the Manhattan bbox distance.
  const double manhattanUm = 70.0 + 60.0;
  EXPECT_GE(r.totalWirelengthUm, manhattanUm * 0.8);
  EXPECT_LE(r.totalWirelengthUm, manhattanUm * 2.0);
}

TEST_F(RouteFixture, SameGcellNetIsTrivial) {
  const InstId a = addInvAt("a", 10, 10);
  const InstId b = addInvAt("b", 11, 10);
  connect2(a, b);
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult r = routeDesign(nl_, grid);
  EXPECT_EQ(r.unroutedNets, 0);
  EXPECT_TRUE(r.nets[0].routed);
  EXPECT_TRUE(r.nets[0].segs.empty());
  EXPECT_DOUBLE_EQ(r.totalWirelengthUm, 0.0);
}

TEST_F(RouteFixture, MultiPinNetFormsTree) {
  const InstId a = addInvAt("drv", 50, 50);
  std::vector<InstId> sinks;
  const NetId n = nl_.addNet("multi");
  nl_.connect(n, a, "Y");
  for (int i = 0; i < 6; ++i) {
    const InstId s = addInvAt("s" + std::to_string(i), 10 + 15 * i, (i % 2) ? 20 : 80);
    nl_.connect(n, s, "A");
  }
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult r = routeDesign(nl_, grid);
  EXPECT_EQ(r.unroutedNets, 0);
  // Tree property: #edges < sum of point-to-point paths; every seg distinct.
  const auto& segs = r.nets[static_cast<std::size_t>(n)].segs;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      const bool same = (segs[i].fromNode == segs[j].fromNode && segs[i].toNode == segs[j].toNode) ||
                        (segs[i].fromNode == segs[j].toNode && segs[i].toNode == segs[j].fromNode);
      EXPECT_FALSE(same) << "duplicate segment in tree";
    }
  }
}

TEST_F(RouteFixture, MacroObstructionForcesClimb2D) {
  // A full-height wall blocking M1..M4 between two cells: the route must
  // climb to M5/M6 to cross it (the paper's reason why 2D designs need at
  // least six metal layers).
  CellType wall;
  wall.name = "WALL";
  wall.cls = CellClass::kMacro;
  wall.width = umToDbu(20);
  wall.height = umToDbu(100);
  wall.substrateWidth = wall.width;
  wall.substrateHeight = wall.height;
  wall.pins.push_back(LibPin{"CLK", PinDir::kInput, 1e-15, true, "M4", Point{umToDbu(1), umToDbu(1)}});
  for (int l = 1; l <= 4; ++l) {
    wall.obstructions.push_back({"M" + std::to_string(l), Rect{0, 0, wall.width, wall.height}});
  }
  const CellTypeId wallId = lib_.addCell(wall);
  const InstId m = nl_.addInstance("blk", wallId);
  nl_.instance(m).pos = Point{umToDbu(40), 0};
  nl_.instance(m).fixed = true;

  const InstId a = addInvAt("a", 10, 50);
  const InstId b = addInvAt("b", 90, 50);
  const NetId n = connect2(a, b);
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult r = routeDesign(nl_, grid);
  EXPECT_EQ(r.unroutedNets, 0);
  // The route uses at least one of the top two layers to cross the wall.
  bool usedTop = false;
  for (const RouteSeg& s : r.nets[static_cast<std::size_t>(n)].segs) {
    if (!s.isVia && s.layer >= 4) usedTop = true;
  }
  EXPECT_TRUE(usedTop);
}

TEST_F(RouteFixture, MacroPinAccessibleUnderObstruction) {
  SramSpec spec{.name = "MEM", .words = 1024, .bitsPerWord = 8};
  const CellTypeId macroId = lib_.addCell(makeSramMacro(spec, tech_));
  const InstId m = nl_.addInstance("mem", macroId);
  nl_.instance(m).pos = Point{umToDbu(40), umToDbu(40)};
  nl_.instance(m).fixed = true;

  const InstId drv = addInvAt("drv", 5, 5);
  const NetId n = nl_.addNet("to_pin");
  nl_.connect(n, drv, "Y");
  nl_.connect(n, m, "D0");  // pin on M4 inside the obstruction
  RouteGrid grid(nl_, die_, tech_.beol);
  const RoutingResult r = routeDesign(nl_, grid);
  EXPECT_EQ(r.unroutedNets, 0);
  ASSERT_TRUE(r.nets[static_cast<std::size_t>(n)].routed);
}

// ---------------------------------------------------------------------------
// Combined-stack (Macro-3D) routing.

class CombinedRouteFixture : public RouteFixture {
 protected:
  CombinedRouteFixture() {
    macroTech_ = makeTech28(4);
    combined_ = buildCombinedBeol(tech_.beol, macroTech_.beol, F2fViaSpec{},
                                  MacroDieStackOrder::kFlipped);
  }
  TechNode macroTech_;
  Beol combined_;
};

TEST_F(CombinedRouteFixture, RouteCrossesF2fToProjectedMacroPin) {
  SramSpec spec{.name = "MEM3D", .words = 1024, .bitsPerWord = 8};
  const CellType orig = makeSramMacro(spec, tech_);
  const CellTypeId projId = lib_.addCell(projectToMacroDie(orig, tech_));
  const InstId m = nl_.addInstance("mem", projId);
  nl_.instance(m).pos = Point{umToDbu(40), umToDbu(40)};
  nl_.instance(m).fixed = true;
  nl_.instance(m).die = DieId::kMacro;

  const InstId drv = addInvAt("drv", 10, 10);
  const NetId n = nl_.addNet("to_md_pin");
  nl_.connect(n, drv, "Y");
  nl_.connect(n, m, "D0");  // pin on M4_MD

  RouteGrid grid(nl_, die_, combined_);
  EXPECT_GE(grid.f2fCutLayer(), 0);
  const RoutingResult r = routeDesign(nl_, grid);
  EXPECT_EQ(r.unroutedNets, 0);
  EXPECT_GE(r.f2fBumps, 1);
  // Route must contain exactly one F2F crossing for this 2-pin net.
  int f2fCrossings = 0;
  for (const RouteSeg& s : r.nets[static_cast<std::size_t>(n)].segs) {
    if (s.isVia && s.layer == grid.f2fCutLayer()) ++f2fCrossings;
  }
  EXPECT_EQ(f2fCrossings, 1);
}

TEST_F(CombinedRouteFixture, LogicOnlyNetStaysCheapOnLogicDie) {
  const InstId a = addInvAt("a", 10, 10);
  const InstId b = addInvAt("b", 60, 60);
  const NetId n = connect2(a, b);
  RouteGrid grid(nl_, die_, combined_);
  const RoutingResult r = routeDesign(nl_, grid);
  EXPECT_EQ(r.unroutedNets, 0);
  // With free capacity everywhere the route should not cross the bond layer.
  for (const RouteSeg& s : r.nets[static_cast<std::size_t>(n)].segs) {
    if (s.isVia) {
      EXPECT_NE(s.layer, grid.f2fCutLayer());
    }
  }
  EXPECT_EQ(r.f2fBumps, 0);
  EXPECT_DOUBLE_EQ(r.wirelengthOfDieUm(combined_, DieId::kMacro), 0.0);
}

TEST_F(CombinedRouteFixture, F2fCapacityFollowsBumpPitch) {
  RouteGrid grid(nl_, die_, combined_);
  const int f2f = grid.f2fCutLayer();
  // 4um gcell, 1um pitch: (4/1)^2 * 0.5 = 8 sites.
  EXPECT_EQ(grid.viaCap(grid.viaEdgeId(5, 5, f2f)), 8);
}

TEST_F(CombinedRouteFixture, ObstructionBlocksSubstrateSideViaFlipped) {
  SramSpec spec{.name = "MEMOBS", .words = 4096, .bitsPerWord = 32};
  const CellType orig = makeSramMacro(spec, tech_);
  const CellTypeId projId = lib_.addCell(projectToMacroDie(orig, tech_));
  const InstId m = nl_.addInstance("mem", projId);
  nl_.instance(m).pos = Point{umToDbu(20), umToDbu(20)};
  nl_.instance(m).fixed = true;
  nl_.instance(m).die = DieId::kMacro;

  RouteGrid grid(nl_, die_, combined_);
  // Combined stack: logic M1..M6 = 0..5, F2F cut = 5, M4_MD = 6, ... M1_MD = 9.
  const int m4md = *combined_.findMetal("M4_MD");
  ASSERT_EQ(m4md, 6);
  const int cx = grid.mapping().xIndex(umToDbu(30));
  const int cy = grid.mapping().yIndex(umToDbu(30));
  // Wire tracks on M4_MD are gone under the macro.
  EXPECT_EQ(grid.wireCap(grid.wireEdgeId(cx, cy, m4md)), 0);
  // The via toward the macro substrate (M4_MD -> M3_MD) is blocked...
  EXPECT_EQ(grid.viaCap(grid.viaEdgeId(cx, cy, m4md)), 0);
  // ...but the pin-access via (F2F -> M4_MD) stays open.
  EXPECT_GT(grid.viaCap(grid.viaEdgeId(cx, cy, grid.f2fCutLayer())), 0);
}

TEST_F(RouteFixture, CongestionTriggersOverflowAccounting) {
  // Saturate one corridor: many parallel nets through a 1-gcell-wide channel.
  for (int i = 0; i < 60; ++i) {
    const InstId a = addInvAt("a" + std::to_string(i), 2, 2);
    const InstId b = addInvAt("b" + std::to_string(i), 97, 2);
    connect2(a, b);
  }
  // Shrink die to a narrow channel so all nets share one row of gcells.
  const Rect channel{0, 0, umToDbu(100), umToDbu(8)};
  RouteGrid grid(nl_, channel, tech_.beol);
  RouterOptions opt;
  opt.maxIterations = 2;
  const RoutingResult r = routeDesign(nl_, grid, opt);
  EXPECT_EQ(r.unroutedNets, 0);  // overflow allowed, never disconnect
  // 60 nets through a channel: either overflow is reported or capacity held.
  EXPECT_GE(r.totalOverflow, 0);
}

// ---------------------------------------------------------------------------
// Search-kernel overhaul: windowed A* and the admissible via heuristic.

TEST_F(RouteFixture, WindowFallbackStillRoutesDetour) {
  // A wall obstructing ALL six metal layers over 92 of the die's 100um
  // height: the only crossing is a detour through the 8um gap at the top,
  // ~16 gcells above the net's own bounding box. With a 1-gcell halo the
  // windowed search cannot see the gap, so the deterministic widening
  // ladder must kick in -- and the net must still route (the windowed
  // router may never lose a net the full-grid router can route).
  CellType wall;
  wall.name = "WALL6";
  wall.cls = CellClass::kMacro;
  wall.width = umToDbu(20);
  wall.height = umToDbu(92);
  wall.substrateWidth = wall.width;
  wall.substrateHeight = wall.height;
  wall.pins.push_back(
      LibPin{"CLK", PinDir::kInput, 1e-15, true, "M4", Point{umToDbu(1), umToDbu(1)}});
  for (int l = 1; l <= 6; ++l) {
    wall.obstructions.push_back({"M" + std::to_string(l), Rect{0, 0, wall.width, wall.height}});
  }
  const CellTypeId wallId = lib_.addCell(wall);
  const InstId m = nl_.addInstance("blk", wallId);
  nl_.instance(m).pos = Point{umToDbu(40), 0};
  nl_.instance(m).fixed = true;

  const InstId a = addInvAt("a", 10, 30);
  const InstId b = addInvAt("b", 90, 30);
  const NetId n = connect2(a, b);

  RouteGrid grid(nl_, die_, tech_.beol);
  RouterOptions opt;
  opt.searchHaloGcells = 1;
  const RoutingResult r = routeDesign(nl_, grid, opt);
  EXPECT_EQ(r.unroutedNets, 0);
  EXPECT_TRUE(r.nets[static_cast<std::size_t>(n)].routed);
  EXPECT_GE(r.windowFallbacks, 1);

  // The full-grid search routes the same net with zero fallbacks.
  RouteGrid fullGrid(nl_, die_, tech_.beol);
  RouterOptions fullOpt;
  fullOpt.searchHaloGcells = -1;
  const RoutingResult rf = routeDesign(nl_, fullGrid, fullOpt);
  EXPECT_EQ(rf.unroutedNets, 0);
  EXPECT_EQ(rf.windowFallbacks, 0);
}

TEST_F(RouteFixture, WindowedSearchQoRNoWorseThanFullGrid) {
  // Congested scatter: clustered 2-pin nets negotiating over several
  // iterations. The windowed kernel must not lose nets and must not end
  // with more overflow than the full-grid search (confining detours to the
  // nets' neighborhoods keeps negotiation local).
  for (int i = 0; i < 40; ++i) {
    const InstId a = addInvAt("a" + std::to_string(i), 30 + (i * 7) % 40, 30 + (i * 11) % 40);
    const InstId b = addInvAt("b" + std::to_string(i), 30 + (i * 13) % 40, 30 + (i * 5) % 40);
    connect2(a, b);
  }
  auto routeWith = [&](int halo) {
    RouteGrid grid(nl_, die_, tech_.beol);
    RouterOptions opt;
    opt.maxIterations = 8;
    opt.searchHaloGcells = halo;
    return routeDesign(nl_, grid, opt);
  };
  const RoutingResult full = routeWith(-1);
  const RoutingResult win = routeWith(1);
  EXPECT_EQ(full.unroutedNets, 0);
  EXPECT_EQ(win.unroutedNets, 0);
  EXPECT_LE(win.unroutedNets, full.unroutedNets);
  EXPECT_LE(win.totalOverflow, full.totalOverflow);
  EXPECT_LE(win.nodesPopped, full.nodesPopped);
}

TEST_F(CombinedRouteFixture, HeuristicAdmissibleWithCheapF2fVia) {
  // When the F2F bump is configured cheaper than a regular via, the layer
  // term of the A* heuristic must use the cheaper per-cut cost -- charging
  // every layer step at the regular via cost overestimates the true cost
  // of paths through the bond layer (inadmissible), which can return a
  // suboptimal route. This net's shortest path crosses the F2F cut once.
  SramSpec spec{.name = "MEMCHEAP", .words = 1024, .bitsPerWord = 8};
  const CellType orig = makeSramMacro(spec, tech_);
  const CellTypeId projId = lib_.addCell(projectToMacroDie(orig, tech_));
  const InstId m = nl_.addInstance("mem", projId);
  nl_.instance(m).pos = Point{umToDbu(40), umToDbu(40)};
  nl_.instance(m).fixed = true;
  nl_.instance(m).die = DieId::kMacro;

  const InstId drv = addInvAt("drv", 10, 10);
  const NetId n = nl_.addNet("to_md_pin");
  nl_.connect(n, drv, "Y");
  nl_.connect(n, m, "D0");  // pin on M4_MD, beyond the F2F cut

  RouteGrid grid(nl_, die_, combined_);
  RouterOptions opt;
  opt.f2fViaCost = 0.5;  // cheaper than the regular via (2.0)
  const RoutingResult r = routeDesign(nl_, grid, opt);
  EXPECT_EQ(r.unroutedNets, 0);
  ASSERT_TRUE(r.nets[static_cast<std::size_t>(n)].routed);
  int f2fCrossings = 0;
  for (const RouteSeg& s : r.nets[static_cast<std::size_t>(n)].segs) {
    if (s.isVia && s.layer == grid.f2fCutLayer()) ++f2fCrossings;
  }
  EXPECT_EQ(f2fCrossings, 1);
  // An optimal route detours at most modestly past the pin-to-pin
  // Manhattan distance (~42um); an inadmissible heuristic returning a
  // wandering path would blow past this bound.
  EXPECT_LE(r.totalWirelengthUm, 80.0);
}

TEST_F(RouteFixture, DeterministicRouting) {
  for (int i = 0; i < 10; ++i) {
    const InstId a = addInvAt("a" + std::to_string(i), 5 + i * 3, 10);
    const InstId b = addInvAt("b" + std::to_string(i), 90 - i * 2, 80);
    connect2(a, b);
  }
  RouteGrid g1(nl_, die_, tech_.beol);
  RouteGrid g2(nl_, die_, tech_.beol);
  const RoutingResult r1 = routeDesign(nl_, g1);
  const RoutingResult r2 = routeDesign(nl_, g2);
  ASSERT_EQ(r1.nets.size(), r2.nets.size());
  EXPECT_DOUBLE_EQ(r1.totalWirelengthUm, r2.totalWirelengthUm);
  for (std::size_t i = 0; i < r1.nets.size(); ++i) {
    EXPECT_EQ(r1.nets[i].segs.size(), r2.nets[i].segs.size());
  }
}

}  // namespace
}  // namespace m3d
