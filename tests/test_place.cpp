#include <gtest/gtest.h>

#include <random>

#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "place/cg_solver.hpp"
#include "place/legalizer.hpp"
#include "place/placer.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

TEST(CgSolver, SolvesSmallSpdSystem) {
  // Two variables coupled by a spring, each anchored:
  //   min (x0-x1)^2 + 2*(x0-0)^2 + 2*(x1-10)^2
  CgSystem sys(2);
  sys.addEdge(0, 1, 2.0);
  sys.addFixed(0, 4.0, 0.0);
  sys.addFixed(1, 4.0, 10.0);
  std::vector<double> x{5.0, 5.0};
  sys.solve(x);
  // Analytic solution: x0 = 10/4 = 2.5, x1 = 7.5.
  EXPECT_NEAR(x[0], 2.5, 1e-4);
  EXPECT_NEAR(x[1], 7.5, 1e-4);
}

TEST(CgSolver, ChainEquilibrium) {
  // Chain of 5 nodes between fixed endpoints at 0 and 100: equal spacing.
  const int n = 5;
  CgSystem sys(n);
  for (int i = 0; i + 1 < n; ++i) sys.addEdge(i, i + 1, 1.0);
  sys.addFixed(0, 1.0, 0.0);
  sys.addFixed(n - 1, 1.0, 100.0);
  std::vector<double> x(n, 50.0);
  sys.solve(x);
  for (int i = 1; i < n; ++i) EXPECT_GT(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i - 1)]);
  EXPECT_NEAR(x[2], 50.0, 1e-3);  // symmetric middle
}

TEST(CgSolver, WarmStartConverges) {
  CgSystem sys(1);
  sys.addFixed(0, 3.0, 42.0);
  std::vector<double> x{41.9};
  const int iters = sys.solve(x);
  EXPECT_NEAR(x[0], 42.0, 1e-6);
  EXPECT_LE(iters, 3);
}

// ---------------------------------------------------------------------------

class PlaceFixture : public ::testing::Test {
 protected:
  PlaceFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  /// Small register-bounded cloud plus a floorplan.
  void buildCloud(int gates, int regs, Dbu dieUm) {
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    const NetId clk = nl_.addNet("clk");
    nl_.connectPort(clk, clkPort);
    Rng rng(11);
    CloudSpec spec;
    spec.prefix = "c";
    spec.numGates = gates;
    spec.numRegs = regs;
    spec.clockNet = clk;
    buildLogicCloud(nl_, rng, spec);

    fp_.die = Rect{0, 0, snapUp(umToDbu(static_cast<double>(dieUm)), tech_.siteWidth),
                   snapUp(umToDbu(static_cast<double>(dieUm)), tech_.rowHeight)};
    fp_.rowHeight = tech_.rowHeight;
    fp_.siteWidth = tech_.siteWidth;
    assignPorts(nl_, fp_.die);
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Floorplan fp_;
};

TEST_F(PlaceFixture, LegalizerProducesLegalPlacement) {
  buildCloud(400, 60, 60);
  // Scatter cells deterministically.
  std::mt19937_64 rng(3);
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    nl_.instance(i).pos = Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.xhi)),
                                static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.yhi))};
  }
  const LegalizeResult r = legalize(nl_, fp_);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.failedCells, 0);
  EXPECT_EQ(checkLegality(nl_, fp_), "");
}

TEST_F(PlaceFixture, LegalizerAvoidsFullBlockages) {
  buildCloud(300, 50, 60);
  fp_.blockages.push_back({Rect{0, 0, fp_.die.xhi / 2, fp_.die.yhi}, 1.0});
  std::mt19937_64 rng(5);
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    nl_.instance(i).pos =
        Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.xhi)),
              static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.yhi))};
  }
  const LegalizeResult r = legalize(nl_, fp_);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(checkLegality(nl_, fp_), "");
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    EXPECT_GE(nl_.instance(i).pos.x, fp_.die.xhi / 2) << nl_.instance(i).name;
  }
}

TEST_F(PlaceFixture, PartialBlockageReducesCapacityButAllowsCells) {
  buildCloud(200, 40, 60);
  fp_.blockages.push_back({fp_.die, 0.5});  // half the die capacity, striped
  std::mt19937_64 rng(7);
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    nl_.instance(i).pos =
        Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.xhi)),
              static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.yhi))};
  }
  const LegalizeResult r = legalize(nl_, fp_);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(checkLegality(nl_, fp_), "");
}

TEST_F(PlaceFixture, GlobalPlaceReducesHpwlVsRandom) {
  buildCloud(600, 100, 80);
  // Random baseline.
  std::mt19937_64 rng(13);
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    nl_.instance(i).pos =
        Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.xhi)),
              static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp_.die.yhi))};
  }
  legalize(nl_, fp_);
  const std::int64_t randomHpwl = nl_.totalHpwl();

  const PlaceResult pr = globalPlace(nl_, fp_);
  EXPECT_TRUE(pr.success);
  EXPECT_EQ(checkLegality(nl_, fp_), "");
  EXPECT_LT(nl_.totalHpwl(), randomHpwl / 2) << "placer should beat random by >2x";
}

TEST_F(PlaceFixture, PlacementIsDeterministic) {
  buildCloud(300, 60, 70);
  globalPlace(nl_, fp_);
  std::vector<Point> first;
  for (InstId i = 0; i < nl_.numInstances(); ++i) first.push_back(nl_.instance(i).pos);

  // Rebuild the identical problem and re-place.
  Library lib2 = makeStdCellLib(tech_);
  Netlist nl2(&lib2);
  {
    const PortId clkPort = nl2.addPort("clk", PinDir::kInput, Side::kWest, true);
    const NetId clk = nl2.addNet("clk");
    nl2.connectPort(clk, clkPort);
    Rng rng(11);
    CloudSpec spec;
    spec.prefix = "c";
    spec.numGates = 300;
    spec.numRegs = 60;
    spec.clockNet = clk;
    buildLogicCloud(nl2, rng, spec);
    assignPorts(nl2, fp_.die);
  }
  globalPlace(nl2, fp_);
  for (InstId i = 0; i < nl2.numInstances(); ++i) {
    EXPECT_EQ(nl2.instance(i).pos, first[static_cast<std::size_t>(i)]) << i;
  }
}

TEST_F(PlaceFixture, FixedMacrosStayPut) {
  buildCloud(200, 40, 80);
  const InstId macro = nl_.addInstance("fixed_block", lib_.findCell("DFF_X1"));
  nl_.instance(macro).pos = Point{umToDbu(30), snapUp(umToDbu(30), tech_.rowHeight)};
  nl_.instance(macro).fixed = true;
  const Point before = nl_.instance(macro).pos;
  globalPlace(nl_, fp_);
  EXPECT_EQ(nl_.instance(macro).pos, before);
}

TEST(Legalizer, FailsGracefullyWhenNoRoom) {
  const TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  // 100 DFFs into a die that fits only a few.
  for (int i = 0; i < 100; ++i) {
    nl.addInstance("d" + std::to_string(i), lib.findCell("DFF_X2"));
  }
  Floorplan fp;
  fp.die = Rect{0, 0, umToDbu(10), snapUp(umToDbu(2.4), tech.rowHeight)};
  fp.rowHeight = tech.rowHeight;
  fp.siteWidth = tech.siteWidth;
  const LegalizeResult r = legalize(nl, fp);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.failedCells, 0);
}

}  // namespace
}  // namespace m3d
