#include <gtest/gtest.h>

#include <random>
#include <set>

#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "opt/net_buffering.hpp"
#include "place/legalizer.hpp"
#include "opt/optimizer.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class Opt2Fixture : public ::testing::Test {
 public:
  Opt2Fixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  Floorplan makeFp(double sideUm) {
    Floorplan fp;
    fp.die = Rect{0, 0, snapUp(umToDbu(sideUm), tech_.siteWidth),
                  snapUp(umToDbu(sideUm), tech_.rowHeight)};
    fp.rowHeight = tech_.rowHeight;
    fp.siteWidth = tech_.siteWidth;
    return fp;
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
};

TEST_F(Opt2Fixture, PresizeUpsizesOverloadedDrivers) {
  // One INV_X1 driving 20 INV_X4 inputs: stage delay far beyond target.
  const InstId drv = nl_.addInstance("drv", lib_.findCell("INV_X1"));
  const NetId in = nl_.addNet("in");
  const PortId p = nl_.addPort("in", PinDir::kInput, Side::kWest);
  nl_.connectPort(in, p);
  nl_.connect(in, drv, "A");
  const NetId heavy = nl_.addNet("heavy");
  nl_.connect(heavy, drv, "Y");
  for (int i = 0; i < 20; ++i) {
    const InstId s = nl_.addInstance("s" + std::to_string(i), lib_.findCell("INV_X4"));
    nl_.connect(heavy, s, "A");
    const NetId o = nl_.addNet("o" + std::to_string(i));
    const PortId op = nl_.addPort("o" + std::to_string(i), PinDir::kOutput, Side::kEast);
    nl_.connect(o, s, "Y");
    nl_.connectPort(o, op);
  }

  EstimationOptions eopt;
  eopt.rPerUm = 0.0;
  eopt.cPerUm = 0.0;
  EstimatedParasitics provider(eopt);
  auto paras = estimateDesign(nl_, eopt);

  const double loadBefore = paras[static_cast<std::size_t>(heavy)].totalLoad();
  const int resized = presizeForLoad(nl_, paras, provider, 90e-12);
  EXPECT_GT(resized, 0);
  // drv must now be a stronger INV.
  EXPECT_GT(nl_.cellOf(drv).driveStrength, 1);
  // Target met or family topped out.
  double worstRes = 0.0;
  for (const auto& a : nl_.cellOf(drv).arcs) worstRes = std::max(worstRes, a.driveRes);
  const double load = paras[static_cast<std::size_t>(heavy)].totalLoad();
  EXPECT_TRUE(worstRes * load <= 90e-12 ||
              lib_.nextSizeUp(nl_.instance(drv).type) == kInvalidCellType);
  EXPECT_NEAR(load, loadBefore, 1e-18);  // sink caps unchanged
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();
}

TEST_F(Opt2Fixture, PresizeLeavesLightDriversAlone) {
  const InstId a = nl_.addInstance("a", lib_.findCell("INV_X1"));
  const InstId b = nl_.addInstance("b", lib_.findCell("INV_X1"));
  const NetId in = nl_.addNet("in");
  const PortId p = nl_.addPort("in", PinDir::kInput, Side::kWest);
  nl_.connectPort(in, p);
  nl_.connect(in, a, "A");
  const NetId m = nl_.addNet("m");
  nl_.connect(m, a, "Y");
  nl_.connect(m, b, "A");
  const NetId o = nl_.addNet("o");
  const PortId op = nl_.addPort("o", PinDir::kOutput, Side::kEast);
  nl_.connect(o, b, "Y");
  nl_.connectPort(o, op);

  EstimationOptions eopt;
  eopt.rPerUm = 0.0;
  eopt.cPerUm = 0.0;
  EstimatedParasitics provider(eopt);
  auto paras = estimateDesign(nl_, eopt);
  // FO1 inverter: 3000 ohm * ~3fF (port cap) << 90ps.
  const int resized = presizeForLoad(nl_, paras, provider, 90e-12);
  EXPECT_EQ(resized, 0);
  EXPECT_EQ(nl_.cellOf(a).driveStrength, 1);
}

TEST_F(Opt2Fixture, FanoutBufferingBoundsSinkCount) {
  const InstId drv = nl_.addInstance("drv", lib_.findCell("INV_X4"));
  nl_.instance(drv).pos = Point{umToDbu(50), umToDbu(50)};
  const NetId in = nl_.addNet("in");
  const PortId p = nl_.addPort("in", PinDir::kInput, Side::kWest);
  nl_.connectPort(in, p);
  nl_.connect(in, drv, "A");
  const NetId big = nl_.addNet("big");
  nl_.connect(big, drv, "Y");
  for (int i = 0; i < 24; ++i) {
    const InstId s = nl_.addInstance("s" + std::to_string(i), lib_.findCell("INV_X1"));
    nl_.instance(s).pos = Point{umToDbu(10.0 + 4.0 * (i % 6)), umToDbu(10.0 + 4.0 * (i / 6))};
    nl_.connect(big, s, "A");
    const NetId o = nl_.addNet("so" + std::to_string(i));
    const PortId op = nl_.addPort("so" + std::to_string(i), PinDir::kOutput, Side::kEast);
    nl_.connect(o, s, "Y");
    nl_.connectPort(o, op);
  }

  const Floorplan fp = makeFp(100.0);
  NetBufferingOptions opt;
  opt.maxFanout = 6;
  const NetBufferingResult r = bufferLongNets(nl_, fp, opt);
  EXPECT_GT(r.buffersInserted, 0);
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();
  // The driver's net now carries at most maxFanout sinks... minus the
  // buffer tree structure: every non-clock net obeys the fanout bound
  // within one buffering round's tolerance.
  const Net& net = nl_.net(big);
  EXPECT_LE(static_cast<int>(net.pins.size()) - 1, 24);
  EXPECT_LT(static_cast<int>(net.pins.size()) - 1, 24);  // strictly reduced
}

TEST_F(Opt2Fixture, CombDriveNetsAreCombinationallyDriven) {
  const NetId clk = nl_.addNet("clk");
  const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
  nl_.connectPort(clk, clkPort);

  std::vector<NetId> comb;
  std::vector<NetId> reg;
  for (int i = 0; i < 6; ++i) {
    const NetId c = nl_.addNet("comb" + std::to_string(i));
    const PortId cp = nl_.addPort("comb" + std::to_string(i), PinDir::kOutput, Side::kEast);
    nl_.connectPort(c, cp);
    comb.push_back(c);
    const NetId r = nl_.addNet("reg" + std::to_string(i));
    const PortId rp = nl_.addPort("reg" + std::to_string(i), PinDir::kOutput, Side::kNorth);
    nl_.connectPort(r, rp);
    reg.push_back(r);
  }

  Rng rng(5);
  CloudSpec spec;
  spec.prefix = "t";
  spec.numGates = 150;
  spec.numRegs = 30;
  spec.clockNet = clk;
  spec.driveNets = reg;
  spec.combDriveNets = comb;
  buildLogicCloud(nl_, rng, spec);
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();

  for (NetId n : comb) {
    const Net& net = nl_.net(n);
    const NetPin& drv = net.pins[static_cast<std::size_t>(net.driverIdx)];
    ASSERT_EQ(drv.kind, NetPin::Kind::kInstPin);
    EXPECT_FALSE(nl_.cellOf(drv.inst).isSequential()) << nl_.net(n).name;
  }
  for (NetId n : reg) {
    const Net& net = nl_.net(n);
    const NetPin& drv = net.pins[static_cast<std::size_t>(net.driverIdx)];
    ASSERT_EQ(drv.kind, NetPin::Kind::kInstPin);
    EXPECT_TRUE(nl_.cellOf(drv.inst).isSequential()) << nl_.net(n).name;
  }
}

TEST_F(Opt2Fixture, RowDitheredPartialBlockageHalvesCapacity) {
  // Fill a small die against a 0.5-density blockage covering everything:
  // about half the rows must stay empty.
  for (int i = 0; i < 40; ++i) {
    nl_.addInstance("c" + std::to_string(i), lib_.findCell("DFF_X1"));
  }
  Floorplan fp = makeFp(20.0);
  fp.blockages.push_back({fp.die, 0.5});
  std::mt19937_64 rng(3);
  for (InstId i = 0; i < nl_.numInstances(); ++i) {
    nl_.instance(i).pos = Point{static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp.die.xhi)),
                                static_cast<Dbu>(rng() % static_cast<std::uint64_t>(fp.die.yhi))};
  }
  const LegalizeResult r = legalize(nl_, fp);
  EXPECT_TRUE(r.success);
  // Count distinct used rows: must be <= ceil(numRows * 0.5) + 1.
  std::set<Dbu> rows;
  for (InstId i = 0; i < nl_.numInstances(); ++i) rows.insert(nl_.instance(i).pos.y);
  EXPECT_LE(static_cast<int>(rows.size()), fp.numRows() / 2 + 1);
}

}  // namespace
}  // namespace m3d
