#include <gtest/gtest.h>

#include <random>

#include "geom/grid.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/spatial_index.hpp"
#include "geom/units.hpp"

namespace m3d {
namespace {

TEST(Units, UmDbuRoundTrip) {
  EXPECT_EQ(umToDbu(1.0), 1000);
  EXPECT_DOUBLE_EQ(dbuToUm(1500), 1.5);
  EXPECT_DOUBLE_EQ(dbu2ToUm2(2'000'000), 2.0);
  EXPECT_DOUBLE_EQ(dbu2ToMm2(1'000'000'000'000LL), 1.0);
}

TEST(Units, ElectricalHelpers) {
  EXPECT_DOUBLE_EQ(fToFf(1e-15), 1.0);
  EXPECT_DOUBLE_EQ(fToNf(1e-9), 1.0);
  EXPECT_DOUBLE_EQ(sToPs(1e-12), 1.0);
  EXPECT_DOUBLE_EQ(sToNs(1e-9), 1.0);
}

TEST(Point, Arithmetic) {
  const Point a{3, 4};
  const Point b{-1, 2};
  EXPECT_EQ(a + b, Point(2, 6));
  EXPECT_EQ(a - b, Point(4, 2));
  Point c = a;
  c += b;
  EXPECT_EQ(c, Point(2, 6));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(Point, ManhattanDistance) {
  EXPECT_EQ(manhattanDistance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattanDistance({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattanDistance({-2, -2}, {2, 2}), 8);
  EXPECT_EQ(manhattanDistance({5, 5}, {5, 5}), 0);
}

TEST(Point, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(euclideanDistance({0, 0}, {3, 4}), 5.0);
}

TEST(Rect, BasicAccessors) {
  const Rect r{0, 0, 10, 20};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_EQ(r.halfPerimeter(), 30);
  EXPECT_EQ(r.center(), Point(5, 10));
  EXPECT_FALSE(r.isEmpty());
}

TEST(Rect, EmptyIdentity) {
  Rect e = Rect::makeEmpty();
  EXPECT_TRUE(e.isEmpty());
  EXPECT_EQ(e.area(), 0);
  e.expandToInclude(Point{5, 7});
  EXPECT_FALSE(e.isEmpty());
  EXPECT_EQ(e, Rect(5, 7, 5, 7));
  e.expandToInclude(Point{-1, 10});
  EXPECT_EQ(e, Rect(-1, 7, 5, 10));
}

TEST(Rect, ContainsAndOverlap) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_FALSE(r.contains(Point{11, 5}));
  EXPECT_TRUE(r.contains(Rect{2, 2, 8, 8}));
  EXPECT_FALSE(r.contains(Rect{2, 2, 11, 8}));

  // Touching edges: intersects but does not overlap.
  const Rect t{10, 0, 20, 10};
  EXPECT_TRUE(r.intersects(t));
  EXPECT_FALSE(r.overlaps(t));
  EXPECT_TRUE(r.overlaps(Rect{9, 9, 11, 11}));
}

TEST(Rect, Intersection) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 15, 15};
  EXPECT_EQ(a.intersection(b), Rect(5, 5, 10, 10));
  EXPECT_TRUE(a.intersection(Rect{20, 20, 30, 30}).isEmpty());
}

TEST(Rect, InflateTranslateScaleClamp) {
  const Rect r{10, 10, 20, 20};
  EXPECT_EQ(r.inflated(5), Rect(5, 5, 25, 25));
  EXPECT_EQ(r.inflated(-2), Rect(12, 12, 18, 18));
  EXPECT_EQ(r.translated({-10, 5}), Rect(0, 15, 10, 25));
  EXPECT_EQ(r.scaled(3, 2), Rect(15, 15, 30, 30));
  EXPECT_EQ(r.clamp(Point{0, 30}), Point(10, 20));
}

TEST(Rect, ExpandToIncludeRect) {
  Rect r = Rect::makeEmpty();
  r.expandToInclude(Rect{0, 0, 5, 5});
  r.expandToInclude(Rect{10, -3, 12, 2});
  EXPECT_EQ(r, Rect(0, -3, 12, 5));
  r.expandToInclude(Rect::makeEmpty());  // no-op
  EXPECT_EQ(r, Rect(0, -3, 12, 5));
}

TEST(Grid2D, Basics) {
  Grid2D<int> g(4, 3, 7);
  EXPECT_EQ(g.nx(), 4);
  EXPECT_EQ(g.ny(), 3);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.at(3, 2), 7);
  g.at(1, 1) = 42;
  EXPECT_EQ(g.at(1, 1), 42);
  g.fill(0);
  EXPECT_EQ(g.at(1, 1), 0);
  EXPECT_TRUE(g.inBounds(0, 0));
  EXPECT_FALSE(g.inBounds(4, 0));
  EXPECT_FALSE(g.inBounds(0, -1));
}

TEST(GridMapping, IndexingAndCells) {
  const Rect area{0, 0, 1000, 700};
  const GridMapping m(area, 300);
  EXPECT_EQ(m.nx(), 4);  // ceil(1000/300)
  EXPECT_EQ(m.ny(), 3);  // ceil(700/300)
  EXPECT_EQ(m.xIndex(0), 0);
  EXPECT_EQ(m.xIndex(299), 0);
  EXPECT_EQ(m.xIndex(300), 1);
  EXPECT_EQ(m.xIndex(999), 3);
  EXPECT_EQ(m.xIndex(5000), 3);   // clamped
  EXPECT_EQ(m.yIndex(-100), 0);   // clamped
  // Last cell absorbs the remainder.
  EXPECT_EQ(m.cellRect(3, 0).xhi, 1000);
  EXPECT_EQ(m.cellRect(0, 2).yhi, 700);
}

TEST(GridMapping, CellRectsTileTheArea) {
  const Rect area{100, 200, 1100, 900};
  const GridMapping m(area, 250);
  std::int64_t total = 0;
  for (int y = 0; y < m.ny(); ++y) {
    for (int x = 0; x < m.nx(); ++x) {
      total += m.cellRect(x, y).area();
    }
  }
  EXPECT_EQ(total, area.area());
}

TEST(RectIndex, QueryOverlapping) {
  RectIndex idx(Rect{0, 0, 1000, 1000}, 100);
  idx.insert(1, Rect{0, 0, 100, 100});
  idx.insert(2, Rect{50, 50, 150, 150});
  idx.insert(3, Rect{500, 500, 600, 600});
  EXPECT_EQ(idx.size(), 3u);

  const auto hits = idx.queryOverlapping(Rect{40, 40, 60, 60});
  EXPECT_EQ(hits, (std::vector<std::int32_t>{1, 2}));
  EXPECT_TRUE(idx.queryOverlapping(Rect{200, 200, 300, 300}).empty());
  EXPECT_TRUE(idx.anyOverlapping(Rect{550, 550, 560, 560}));
  EXPECT_FALSE(idx.anyOverlapping(Rect{700, 700, 800, 800}));
}

TEST(RectIndex, TouchingEdgesDoNotOverlap) {
  RectIndex idx(Rect{0, 0, 100, 100}, 10);
  idx.insert(1, Rect{0, 0, 50, 50});
  EXPECT_FALSE(idx.anyOverlapping(Rect{50, 0, 100, 50}));
  EXPECT_TRUE(idx.anyOverlapping(Rect{49, 0, 100, 50}));
}

/// Property sweep: a randomized set of rectangles, brute-force checked.
class RectIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(RectIndexProperty, MatchesBruteForce) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  const Rect area{0, 0, 2000, 2000};
  RectIndex idx(area, 128);
  std::vector<Rect> rects;
  for (int i = 0; i < 60; ++i) {
    const Dbu x = static_cast<Dbu>(rng() % 1800);
    const Dbu y = static_cast<Dbu>(rng() % 1800);
    const Dbu w = 1 + static_cast<Dbu>(rng() % 200);
    const Dbu h = 1 + static_cast<Dbu>(rng() % 200);
    rects.push_back(Rect{x, y, x + w, y + h});
    idx.insert(i, rects.back());
  }
  for (int q = 0; q < 40; ++q) {
    const Dbu x = static_cast<Dbu>(rng() % 1900);
    const Dbu y = static_cast<Dbu>(rng() % 1900);
    const Rect query{x, y, x + 100, y + 100};
    std::vector<std::int32_t> expect;
    for (int i = 0; i < 60; ++i) {
      if (rects[static_cast<std::size_t>(i)].overlaps(query)) expect.push_back(i);
    }
    EXPECT_EQ(idx.queryOverlapping(query), expect) << "seed=" << seed << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectIndexProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace m3d
