#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "extract/extraction.hpp"
#include "floorplan/floorplan.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "opt/optimizer.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

/// Incremental-vs-scratch equivalence suite (ctest label "sta"): every edit
/// sequence driven through the persistent engine's dirty-net API must leave
/// it bit-identical to a Sta built from scratch on the same netlist state --
/// arrivals, WNS, critical path, min-period, and criticalities alike. That
/// equality is what lets the optimizer and the route loops trust cone
/// updates blindly; see DESIGN.md Sec. 5j for the invariants.

namespace m3d {
namespace {

/// The StaProblem cloud, plus a half-cycle input port so the parametric
/// min-period pair and the period-dependent reseed path both get exercised.
class IncrProblem {
 public:
  IncrProblem() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    const NetId clk = nl_.addNet("clk");
    nl_.connectPort(clk, clkPort);
    const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
    const NetId nIn = nl_.addNet("n_in");
    nl_.connectPort(nIn, in);
    const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);
    const NetId nOut = nl_.addNet("n_out");
    nl_.connectPort(nOut, out);
    nl_.port(in).halfCycle = true;  // paper's inter-tile launch at T/2

    Rng rng(29);
    CloudSpec spec;
    spec.prefix = "s";
    spec.numGates = 500;
    spec.numRegs = 90;
    spec.clockNet = clk;
    spec.consumeNets = {nIn};
    spec.driveNets = {nOut};
    buildLogicCloud(nl_, rng, spec);

    const Rect die{0, 0, umToDbu(80), umToDbu(80)};
    assignPorts(nl_, die);
    std::mt19937_64 prng(31);
    for (InstId i = 0; i < nl_.numInstances(); ++i) {
      nl_.instance(i).pos = Point{static_cast<Dbu>(prng() % static_cast<std::uint64_t>(die.xhi)),
                                  static_cast<Dbu>(prng() % static_cast<std::uint64_t>(die.yhi))};
    }
    paras_ = estimateDesign(nl_, EstimationOptions{});
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  std::vector<NetParasitics> paras_;
};

/// Nets whose parasitics change when \p inst changes size (mirrors the
/// optimizer: every input-pin net sees a new pin cap).
std::vector<NetId> inputNetsOf(const Netlist& nl, InstId inst) {
  std::vector<NetId> out;
  const CellType& c = nl.cellOf(inst);
  const Instance& in = nl.instance(inst);
  for (std::size_t p = 0; p < c.pins.size(); ++p) {
    if (c.pins[p].dir != PinDir::kInput) continue;
    const NetId n = in.pinNets[p];
    if (n != kInvalidId) out.push_back(n);
  }
  return out;
}

/// Drives one batch of edits through both the netlist and \p sta following
/// the documented contract, then refreshes parasitics and invalidates.
class EditDriver {
 public:
  EditDriver(IncrProblem& p, Sta& sta) : p_(p), sta_(sta), provider_(EstimationOptions{}) {
    bufId_ = p_.lib_.findCell("BUF_X8");
    bufA_ = *p_.lib_.cell(bufId_).findPin("A");
    bufY_ = *p_.lib_.cell(bufId_).findPin("Y");
  }

  bool resize(InstId inst, bool up) {
    const CellType& c = p_.nl_.cellOf(inst);
    if (c.isMacro() || c.cls == CellClass::kFiller || c.family.empty()) return false;
    const CellTypeId next = up ? p_.lib_.nextSizeUp(p_.nl_.instance(inst).type)
                               : p_.lib_.nextSizeDown(p_.nl_.instance(inst).type);
    if (next == kInvalidCellType) return false;
    resized_.push_back({inst, p_.nl_.instance(inst).type});
    p_.nl_.resize(inst, next);
    sta_.applyResize(inst);
    for (const NetId n : inputNetsOf(p_.nl_, inst)) dirty_.push_back(n);
    return true;
  }

  bool revertLastResize() {
    if (resized_.empty()) return false;
    const auto [inst, oldType] = resized_.back();
    resized_.pop_back();
    p_.nl_.resize(inst, oldType);
    sta_.applyResize(inst);
    for (const NetId n : inputNetsOf(p_.nl_, inst)) dirty_.push_back(n);
    return true;
  }

  /// Buffer insertion shaped like the optimizer's: a new midpoint buffer on
  /// \p netId, with the chosen sink (and any sink within a quarter of its
  /// span) moved onto the buffered subnet.
  bool insertBuffer(NetId netId, int sinkIdx) {
    const Net& net = p_.nl_.net(netId);
    if (net.isClock || net.driverIdx < 0 || net.pins.size() < 2) return false;
    const std::vector<NetPin> netPins = net.pins;
    const int driverIdx = net.driverIdx;
    if (sinkIdx == driverIdx) return false;
    const NetPin b = netPins[static_cast<std::size_t>(sinkIdx)];
    const Point pa = p_.nl_.pinPosition(netPins[static_cast<std::size_t>(driverIdx)]);
    const Point pb = p_.nl_.pinPosition(b);
    const InstId buf =
        p_.nl_.addInstance("fz_buf_" + std::to_string(bufCounter_++), bufId_);
    p_.nl_.instance(buf).pos = Point{(pa.x + pb.x) / 2, (pa.y + pb.y) / 2};
    const NetId newNet = p_.nl_.addNet("fz_net_" + std::to_string(bufCounter_));
    const Dbu radius = manhattanDistance(pa, pb) / 4;
    for (int i = 0; i < static_cast<int>(netPins.size()); ++i) {
      if (i == driverIdx) continue;
      const NetPin& pin = netPins[static_cast<std::size_t>(i)];
      if (pin == b || manhattanDistance(p_.nl_.pinPosition(pin), pb) <= radius) {
        p_.nl_.disconnect(netId, pin);
        if (pin.kind == NetPin::Kind::kInstPin) {
          p_.nl_.connect(newNet, pin.inst, pin.libPin);
        } else {
          p_.nl_.connectPort(newNet, pin.port);
        }
      }
    }
    p_.nl_.connect(netId, buf, bufA_);
    p_.nl_.connect(newNet, buf, bufY_);
    sta_.applyBufferInsertion(buf, netId, newNet);
    dirty_.push_back(netId);
    dirty_.push_back(newNet);
    return true;
  }

  /// Step 2+3 of the contract: refresh parasitics of the touched nets, then
  /// re-derive the engine's edge delays from them.
  void commit() {
    std::sort(dirty_.begin(), dirty_.end());
    dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
    provider_.refresh(p_.nl_, dirty_, p_.paras_);
    sta_.invalidateNets(dirty_);
    dirty_.clear();
  }

 private:
  IncrProblem& p_;
  Sta& sta_;
  EstimatedParasitics provider_;
  CellTypeId bufId_ = kInvalidCellType;
  int bufA_ = 0;
  int bufY_ = 0;
  int bufCounter_ = 0;
  std::vector<NetId> dirty_;
  std::vector<std::pair<InstId, CellTypeId>> resized_;
};

/// Asserts the persistent engine is bit-identical to a from-scratch Sta on
/// the current netlist state, across every query surface.
void expectMatchesScratch(const IncrProblem& p, const Sta& incr, const ClockModel* clock,
                          double period, const std::string& where) {
  const Sta scratch(p.nl_, p.paras_, clock, kTypicalCorner, 1);
  EXPECT_EQ(incr.worstSlack(period), scratch.worstSlack(period)) << where;
  const std::vector<double> ai = incr.portArrivals(period);
  const std::vector<double> as = scratch.portArrivals(period);
  ASSERT_EQ(ai.size(), as.size()) << where;
  for (std::size_t i = 0; i < ai.size(); ++i) EXPECT_EQ(ai[i], as[i]) << where << " port " << i;
  const double mpI = incr.findMinPeriod();
  const double mpS = scratch.findMinPeriod();
  EXPECT_EQ(mpI, mpS) << where;
  EXPECT_NEAR(mpI, incr.findMinPeriodBisect(), 1e-12) << where;
  const std::vector<double> ci = incr.netCriticality(period);
  const std::vector<double> cs = scratch.netCriticality(period);
  ASSERT_EQ(ci.size(), cs.size()) << where;
  for (std::size_t i = 0; i < ci.size(); ++i) EXPECT_EQ(ci[i], cs[i]) << where << " net " << i;
  const TimingReport ri = incr.analyze(period);
  const TimingReport rs = scratch.analyze(period);
  EXPECT_EQ(ri.wns, rs.wns) << where;
  EXPECT_EQ(ri.tns, rs.tns) << where;
  EXPECT_EQ(ri.failingEndpoints, rs.failingEndpoints) << where;
  EXPECT_EQ(ri.critEndpointName, rs.critEndpointName) << where;
  ASSERT_EQ(ri.criticalPath.size(), rs.criticalPath.size()) << where;
  for (std::size_t i = 0; i < ri.criticalPath.size(); ++i) {
    EXPECT_EQ(ri.criticalPath[i].arrival, rs.criticalPath[i].arrival) << where << " step " << i;
  }
}

TEST(StaIncrEquivalence, ResizeChainMatchesScratch) {
  IncrProblem p;
  ClockModel clock;  // ideal latencies, but a real uncertainty margin
  clock.uncertainty = 20e-12;
  Sta sta(p.nl_, p.paras_, &clock, kTypicalCorner, 1);
  EditDriver edit(p, sta);
  std::mt19937_64 prng(7);
  for (int batch = 0; batch < 12; ++batch) {
    int applied = 0;
    while (applied < 3) {
      const InstId inst = static_cast<InstId>(prng() % static_cast<std::uint64_t>(p.nl_.numInstances()));
      if (edit.resize(inst, (prng() & 1) != 0)) ++applied;
    }
    edit.commit();
    expectMatchesScratch(p, sta, &clock, 1.4e-9, "batch " + std::to_string(batch));
  }
  EXPECT_GT(sta.incrStats().incrUpdates, 0);
}

TEST(StaIncrEquivalence, BufferAndRevertFuzzMatchesScratch) {
  IncrProblem p;
  Sta sta(p.nl_, p.paras_, nullptr, kTypicalCorner, 1);
  EditDriver edit(p, sta);
  std::mt19937_64 prng(101);
  for (int batch = 0; batch < 10; ++batch) {
    int applied = 0;
    int guard = 0;
    while (applied < 2 && guard++ < 200) {
      const std::uint64_t op = prng() % 4;
      if (op == 0) {
        if (edit.revertLastResize()) ++applied;
      } else if (op == 1) {
        const NetId n = static_cast<NetId>(prng() % static_cast<std::uint64_t>(p.nl_.numNets()));
        const Net& net = p.nl_.net(n);
        if (net.pins.size() < 2) continue;
        const int sinkIdx = static_cast<int>(prng() % net.pins.size());
        if (edit.insertBuffer(n, sinkIdx)) ++applied;
      } else {
        const InstId inst =
            static_cast<InstId>(prng() % static_cast<std::uint64_t>(p.nl_.numInstances()));
        if (edit.resize(inst, op == 2)) ++applied;
      }
    }
    edit.commit();
    expectMatchesScratch(p, sta, nullptr, 1.2e-9, "batch " + std::to_string(batch));
  }
}

TEST(StaIncrEquivalence, PeriodChangeReseedsHalfCycleCones) {
  IncrProblem p;
  Sta sta(p.nl_, p.paras_, nullptr, kTypicalCorner, 1);
  // Same engine queried across periods (the half-cycle input port makes
  // arrivals period-dependent) must match scratch engines at each period.
  for (const double period : {1.0e-9, 2.0e-9, 1.5e-9, 1.0e-9}) {
    const Sta scratch(p.nl_, p.paras_, nullptr, kTypicalCorner, 1);
    EXPECT_EQ(sta.worstSlack(period), scratch.worstSlack(period)) << period;
    const std::vector<double> ai = sta.portArrivals(period);
    const std::vector<double> as = scratch.portArrivals(period);
    for (std::size_t i = 0; i < ai.size(); ++i) EXPECT_EQ(ai[i], as[i]) << period;
  }
  // One full sweep primed the cache; each of the three period changes then
  // either completed as a cone reseed or (if the half-cycle fanout cone is
  // too large) fell back into exactly one more full sweep.
  const Sta::IncrStats& s = sta.incrStats();
  EXPECT_EQ(s.incrUpdates + s.fullFallbacks, 3);
  EXPECT_EQ(s.fullSweeps, 1 + s.fullFallbacks);
}

TEST(StaIncrFallback, OversizedConeFallsBackToFullSweep) {
  IncrProblem p;
  Sta sta(p.nl_, p.paras_, nullptr, kTypicalCorner, 1);
  sta.setConeFallbackRatio(0.0);  // limit floors at 64 visited pins
  ASSERT_GT(sta.worstSlack(1.4e-9), -1.0);  // prime the cache
  EditDriver edit(p, sta);
  std::mt19937_64 prng(13);
  int applied = 0;
  while (applied < 40) {
    const InstId inst = static_cast<InstId>(prng() % static_cast<std::uint64_t>(p.nl_.numInstances()));
    if (edit.resize(inst, true)) ++applied;
  }
  edit.commit();
  expectMatchesScratch(p, sta, nullptr, 1.4e-9, "post-fallback");
  EXPECT_GT(sta.incrStats().fullFallbacks, 0);
}

TEST(StaIncrFallback, FullRatioNeverFallsBack) {
  IncrProblem p;
  Sta sta(p.nl_, p.paras_, nullptr, kTypicalCorner, 1);
  sta.setConeFallbackRatio(1.0);  // a cone visits each pin at most once
  ASSERT_GT(sta.worstSlack(1.4e-9), -1.0);
  EditDriver edit(p, sta);
  std::mt19937_64 prng(13);
  int applied = 0;
  while (applied < 40) {
    const InstId inst = static_cast<InstId>(prng() % static_cast<std::uint64_t>(p.nl_.numInstances()));
    if (edit.resize(inst, true)) ++applied;
  }
  edit.commit();
  expectMatchesScratch(p, sta, nullptr, 1.4e-9, "no-fallback");
  EXPECT_EQ(sta.incrStats().fullFallbacks, 0);
  EXPECT_GT(sta.incrStats().incrUpdates, 0);
  EXPECT_GT(sta.incrStats().coneNodes, 0);
}

TEST(StaIncrDeterminism, EditSequenceBitIdenticalAcrossThreadCounts) {
  // The determinism matrix entry for cone updates: the same edit+query
  // sequence at 1/2/8 threads must produce bit-identical results after
  // every batch (the cone's per-level active list is sorted and each pin
  // writes only its own slot, so the schedule cannot matter).
  struct Trace {
    std::vector<double> wns;
    std::vector<double> minPeriod;
    std::vector<std::vector<double>> arrivals;
  };
  const auto run = [](int threads) {
    Trace t;
    IncrProblem p;
    Sta sta(p.nl_, p.paras_, nullptr, kTypicalCorner, threads);
    EditDriver edit(p, sta);
    std::mt19937_64 prng(23);
    for (int batch = 0; batch < 6; ++batch) {
      int applied = 0;
      while (applied < 4) {
        const InstId inst =
            static_cast<InstId>(prng() % static_cast<std::uint64_t>(p.nl_.numInstances()));
        if (edit.resize(inst, (prng() & 1) != 0)) ++applied;
      }
      edit.commit();
      t.wns.push_back(sta.worstSlack(1.3e-9));
      t.minPeriod.push_back(sta.findMinPeriod());
      t.arrivals.push_back(sta.portArrivals(1.3e-9));
    }
    return t;
  };
  const Trace ref = run(1);
  for (const int threads : {2, 8}) {
    const Trace got = run(threads);
    ASSERT_EQ(got.wns.size(), ref.wns.size());
    for (std::size_t b = 0; b < ref.wns.size(); ++b) {
      EXPECT_EQ(got.wns[b], ref.wns[b]) << "threads=" << threads << " batch=" << b;
      EXPECT_EQ(got.minPeriod[b], ref.minPeriod[b]) << "threads=" << threads << " batch=" << b;
      ASSERT_EQ(got.arrivals[b].size(), ref.arrivals[b].size());
      for (std::size_t i = 0; i < ref.arrivals[b].size(); ++i) {
        EXPECT_EQ(got.arrivals[b][i], ref.arrivals[b][i])
            << "threads=" << threads << " batch=" << b << " port=" << i;
      }
    }
  }
}

TEST(StaIncrMinPeriod, ExactMatchesBisectionOnCloud) {
  IncrProblem p;
  const Sta sta(p.nl_, p.paras_, nullptr, kTypicalCorner, 1);
  const double exact = sta.findMinPeriod();
  const double bisect = sta.findMinPeriodBisect();
  ASSERT_TRUE(std::isfinite(exact));
  EXPECT_NEAR(exact, bisect, 1e-12);
  // The exact solve must itself be feasible under the conventional check.
  EXPECT_GE(sta.worstSlack(exact), 0.0);
}

TEST(StaIncrMinPeriod, InfeasibleHalfCyclePathReturnsSentinel) {
  // A half-cycle launch into a half-cycle output port can never make
  // timing: T/2 + delay <= T/2 has no solution. Both solvers must return
  // the sentinel instead of a bogus finite period.
  TechNode tech = makeTech28(6);
  Library lib = makeStdCellLib(tech);
  Netlist nl(&lib);
  const PortId in = nl.addPort("hin", PinDir::kInput, Side::kWest);
  const PortId out = nl.addPort("hout", PinDir::kOutput, Side::kEast);
  nl.port(in).halfCycle = true;
  nl.port(out).halfCycle = true;
  const NetId a = nl.addNet("a");
  const NetId y = nl.addNet("y");
  nl.connectPort(a, in);
  nl.connectPort(y, out);
  const CellTypeId bufId = lib.findCell("BUF_X8");
  ASSERT_NE(bufId, kInvalidCellType);
  const InstId buf = nl.addInstance("b0", bufId);
  nl.connect(a, buf, *lib.cell(bufId).findPin("A"));
  nl.connect(y, buf, *lib.cell(bufId).findPin("Y"));
  const Rect die{0, 0, umToDbu(20), umToDbu(20)};
  nl.instance(buf).pos = Point{die.xhi / 2, die.yhi / 2};
  assignPorts(nl, die);
  const std::vector<NetParasitics> paras = estimateDesign(nl, EstimationOptions{});
  const Sta sta(nl, paras, nullptr, kTypicalCorner, 1);
  EXPECT_EQ(sta.findMinPeriod(), Sta::kInfeasiblePeriod);
  EXPECT_EQ(sta.findMinPeriodBisect(), Sta::kInfeasiblePeriod);
}

TEST(StaIncrOptimizer, PersistentEngineMatchesLegacyPath) {
  // The optimizer's two paths -- fresh Sta per pass vs one persistent
  // engine fed the dirty net list -- must produce the same netlist, the
  // same WNS trajectory, and the same min-period.
  const auto run = [](bool incremental) {
    IncrProblem p;
    EstimatedParasitics provider(EstimationOptions{});
    OptimizerOptions opt;
    opt.targetPeriod = 0.9e-9;
    opt.maxPasses = 8;
    opt.numThreads = 1;
    opt.incrementalSta = incremental;
    const OptimizeResult res = optimizeTiming(p.nl_, p.paras_, provider, nullptr, opt);
    const Sta sta(p.nl_, p.paras_, nullptr, kTypicalCorner, 1);
    return std::tuple<int, int, double, double, double, int>{
        res.cellsResized,  res.buffersInserted,      res.initialWns,
        res.finalWns,      sta.findMinPeriod(),      p.nl_.numInstances()};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(StaIncrOptimizer, ZeroPassesSkipsTheInitialProbe) {
  IncrProblem p;
  EstimatedParasitics provider(EstimationOptions{});
  OptimizerOptions opt;
  opt.maxPasses = 0;
  const OptimizeResult res = optimizeTiming(p.nl_, p.paras_, provider, nullptr, opt);
  EXPECT_EQ(res.passes, 0);
  EXPECT_EQ(res.cellsResized, 0);
  EXPECT_EQ(res.initialWns, 0.0);  // never measured: maxPasses == 0 is a no-op
}

}  // namespace
}  // namespace m3d
