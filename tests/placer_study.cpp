// Ad-hoc probe: where does wirelength come from, and how does the placer
// behave across iteration budgets?
#include <iostream>
#include <cmath>
#include <map>

#include "flows/case_study.hpp"
#include "floorplan/floorplan.hpp"
#include "lib/stdcell_factory.hpp"
#include "netlist/openpiton.hpp"
#include "flows/flow_common.hpp"
#include "place/placer.hpp"

using namespace m3d;

int main() {
  const TechNode tech = makeCaseStudyTech();
  TileConfig cfg = makeSmallCacheTileConfig();

  for (int iters : {6, 10, 16}) {
    Library lib = makeStdCellLib(tech);
    Tile tile = generateTile(lib, tech, cfg);
    Netlist& nl = tile.netlist;
    const NetlistStats stats = computeStats(nl);
    const Rect die = computeDie2D(stats, tech);
    placeMacrosRing(nl, tile.groups.macros, die, umToDbu(1.0));
    Floorplan fp;
    fp.die = die;
    fp.rowHeight = tech.rowHeight;
    fp.siteWidth = tech.siteWidth;
    fp.blockages = macroPlacementBlockages(nl, DieId::kLogic, umToDbu(0.5));
    assignPorts(nl, die);

    Floorplan fpRef = fp;
    seedPlacementByModules(tile, fpRef);
    {
      std::cout << "  raw-seed hpwl_um=" << dbuToUm(static_cast<Dbu>(nl.totalHpwl())) << "\n";
      // Seed quality: legalize the raw seed and measure.
      Netlist copy = nl;
      const LegalizeResult lr = legalize(copy, fp);
      std::cout << "  seed+legal hpwl_um=" << dbuToUm(static_cast<Dbu>(copy.totalHpwl()))
                << " avg_disp=" << lr.avgDisplacementUm << " max_disp=" << lr.maxDisplacementUm
                << "\n";
    }
    PlacerOptions popt;
    popt.maxIters = iters;
    popt.useExistingPositions = true;
    const PlaceResult pr = globalPlace(nl, fp, popt);
    std::cout << "iters=" << iters << " hpwl_um=" << pr.hpwlUm
              << " quad_hpwl_um=" << pr.quadraticHpwlUm << " usedIters=" << pr.iterations
              << "\n";

    if (iters == 16) {
      // Creation-index span histogram for core nets.
      std::map<int, int> spanHist;
      double spanHpwl[8] = {0};
      for (NetId n = 0; n < nl.numNets(); ++n) {
        const Net& net = nl.net(n);
        if (net.name.rfind("core", 0) != 0 || net.isClock) continue;
        InstId lo = 1 << 30, hi = -1;
        for (const auto& pp : net.pins) {
          if (pp.kind != NetPin::Kind::kInstPin) continue;
          lo = std::min(lo, pp.inst);
          hi = std::max(hi, pp.inst);
        }
        if (hi < 0) continue;
        const int span = hi - lo;
        int bucket = 0;
        for (int s2 = span; s2 > 4; s2 /= 4) ++bucket;
        bucket = std::min(bucket, 7);
        spanHist[bucket]++;
        spanHpwl[bucket] += dbuToUm(nl.netHpwl(n));
      }
      for (auto& [b, c] : spanHist) {
        std::cout << "  span<=" << (int)std::pow(4, b + 1) << " nets=" << c
                  << " hpwl=" << spanHpwl[b] << "\n";
      }
      // HPWL by net-name prefix.
      std::map<std::string, std::pair<double, int>> byPrefix;
      for (NetId n = 0; n < nl.numNets(); ++n) {
        const std::string& name = nl.net(n).name;
        std::string prefix = name.substr(0, name.find('_'));
        if (prefix.size() > 6) prefix = prefix.substr(0, 6);
        byPrefix[prefix].first += dbuToUm(nl.netHpwl(n));
        byPrefix[prefix].second += 1;
      }
      std::multimap<double, std::string, std::greater<>> sorted;
      for (auto& [p, v] : byPrefix) sorted.insert({v.first, p + " n=" + std::to_string(v.second)});
      int k = 0;
      for (auto& [wl, label] : sorted) {
        if (k++ > 11) break;
        std::cout << "  " << label << " hpwl_um=" << wl << "\n";
      }
    }
  }
  return 0;
}
