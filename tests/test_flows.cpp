#include <gtest/gtest.h>

#include "core/macro3d.hpp"
#include "flows/case_study.hpp"
#include "flows/flows.hpp"

namespace m3d {
namespace {

/// Very small tile so each end-to-end flow stays in the seconds range.
TileConfig tinyConfig() {
  TileConfig cfg;
  cfg.name = "tiny";
  cfg.cache = CacheConfig{2, 2, 4, 8};
  cfg.coreGates = 350;
  cfg.coreRegs = 70;
  cfg.l1CtrlGates = 40;
  cfg.l1CtrlRegs = 10;
  cfg.l2CtrlGates = 60;
  cfg.l2CtrlRegs = 14;
  cfg.l3CtrlGates = 80;
  cfg.l3CtrlRegs = 18;
  cfg.nocGates = 60;
  cfg.nocRegs = 14;
  cfg.nocDataBits = 3;
  return cfg;
}

FlowOptions fastOptions() {
  FlowOptions opt;
  opt.maxFreqRounds = 2;
  opt.optBase.maxPasses = 6;
  return opt;
}

void expectHealthy(const FlowOutput& out) {
  EXPECT_TRUE(out.tile->netlist.validate().empty()) << out.tile->netlist.validate();
  EXPECT_EQ(out.metrics.unroutedNets, 0) << out.trace;
  EXPECT_GT(out.metrics.fclkMhz, 10.0);
  EXPECT_GT(out.metrics.emeanFj, 0.0);
  EXPECT_GT(out.metrics.footprintMm2, 0.0);
  EXPECT_GT(out.metrics.totalWirelengthM, 0.0);
  EXPECT_GT(out.metrics.logicCellAreaMm2, 0.0);
  EXPECT_GT(out.metrics.clockTreeDepth, 0);
  // Independent signoff verification: every healthy flow must come out
  // clean (zero error-grade violations; congestion warnings are allowed).
  EXPECT_EQ(out.metrics.verifyViolations, 0) << out.verify.summaryText();
  EXPECT_TRUE(out.verify.clean()) << out.verify.summaryText();
  // The verifier's recounts must agree with the router's own accounting.
  EXPECT_EQ(out.verify.recomputedOverflowedEdges, out.routes.overflowedEdges);
  EXPECT_EQ(out.verify.f2fBumpCount, out.routes.f2fBumps);
  EXPECT_EQ(out.metrics.f2fBumpCount, out.metrics.f2fBumps);
}

TEST(Flow2D, EndToEnd) {
  const FlowOutput out = runFlow2D(tinyConfig(), fastOptions());
  expectHealthy(out);
  EXPECT_EQ(out.metrics.flow, "2D");
  EXPECT_EQ(out.metrics.f2fBumps, 0);
  EXPECT_FALSE(out.routingBeol.isCombined());
  // Metal area = footprint x 6 layers.
  EXPECT_NEAR(out.metrics.metalAreaMm2, out.metrics.footprintMm2 * 6.0, 1e-9);
}

TEST(FlowMacro3D, EndToEnd) {
  const FlowOutput out = runFlowMacro3D(tinyConfig(), fastOptions());
  expectHealthy(out);
  EXPECT_EQ(out.metrics.flow, "Macro-3D");
  EXPECT_GT(out.metrics.f2fBumps, 0);
  EXPECT_TRUE(out.routingBeol.isCombined());
  // Every macro is on the macro die with a projected master.
  const Netlist& nl = out.tile->netlist;
  for (InstId m : out.tile->groups.macros) {
    EXPECT_EQ(nl.instance(m).die, DieId::kMacro);
    EXPECT_NE(nl.cellOf(m).name.find("_PROJ"), std::string::npos);
    EXPECT_EQ(nl.cellOf(m).substrateWidth, out.logicTech.siteWidth);
  }
  // Combined stack carries 12 metals in the M6-M6 configuration.
  EXPECT_EQ(out.routingBeol.numMetals(), 12);
  EXPECT_NEAR(out.metrics.metalAreaMm2, out.metrics.footprintMm2 * 12.0, 1e-9);
}

TEST(FlowMacro3D, FootprintHalvesVs2D) {
  const FlowOutput d2 = runFlow2D(tinyConfig(), fastOptions());
  const FlowOutput m3 = runFlowMacro3D(tinyConfig(), fastOptions());
  EXPECT_NEAR(m3.metrics.footprintMm2 / d2.metrics.footprintMm2, 0.5, 0.03);
}

TEST(FlowMacro3D, HeterogeneousM6M4Stack) {
  FlowOptions opt = fastOptions();
  opt.macroDieMetals = 4;
  const FlowOutput out = runFlowMacro3D(tinyConfig(), opt);
  expectHealthy(out);
  EXPECT_EQ(out.routingBeol.numMetals(), 10);
  EXPECT_EQ(out.routingBeol.numMetalsOfDie(DieId::kMacro), 4);
  // Metal area shrinks by 2/12 (paper Table III: -16.7%).
  EXPECT_NEAR(out.metrics.metalAreaMm2, out.metrics.footprintMm2 * 10.0, 1e-9);
}

TEST(FlowMacro3D, DieSeparationConsistent) {
  const FlowOutput out = runFlowMacro3D(tinyConfig(), fastOptions());
  const SeparatedDesign sep = separateDies(out, MacroDieStackOrder::kFlipped);
  EXPECT_EQ(sep.logicDieBeol.numMetals(), 6);
  EXPECT_EQ(sep.macroDieBeol.numMetals(), 6);
  EXPECT_FALSE(sep.logicDieBeol.isCombined());
  EXPECT_FALSE(sep.macroDieBeol.isCombined());
  EXPECT_EQ(sep.f2fBumps, out.metrics.f2fBumps);
  EXPECT_NEAR(sep.logicDieWirelengthUm + sep.macroDieWirelengthUm,
              out.routes.totalWirelengthUm, 1e-6);
}

TEST(FlowS2D, EndToEnd) {
  const FlowOutput out = runFlowS2D(tinyConfig(), /*balanced=*/false, fastOptions());
  expectHealthy(out);
  EXPECT_EQ(out.metrics.flow, "MoL S2D");
  EXPECT_GT(out.metrics.f2fBumps, 0);
  // The overlap-fix displacement metric is recorded.
  EXPECT_GE(out.metrics.legalizeAvgDispUm, 0.0);
}

TEST(FlowBfS2D, EndToEnd) {
  const FlowOutput out = runFlowS2D(tinyConfig(), /*balanced=*/true, fastOptions());
  expectHealthy(out);
  EXPECT_EQ(out.metrics.flow, "BF S2D");
  // Balanced floorplan: macros split across both dies.
  const Netlist& nl = out.tile->netlist;
  int onLogic = 0;
  int onMacro = 0;
  for (InstId m : out.tile->groups.macros) {
    (nl.instance(m).die == DieId::kMacro ? onMacro : onLogic)++;
  }
  EXPECT_GT(onLogic, 0);
  EXPECT_GT(onMacro, 0);
}

TEST(FlowC2D, EndToEnd) {
  const FlowOutput out = runFlowC2D(tinyConfig(), fastOptions());
  expectHealthy(out);
  EXPECT_EQ(out.metrics.flow, "C2D");
  EXPECT_GT(out.metrics.f2fBumps, 0);
}

TEST(Flows, IsoPerformanceModeHitsTarget) {
  FlowOptions opt = fastOptions();
  opt.maxPerformance = false;
  opt.targetPeriodNs = 6.0;
  const FlowOutput out = runFlowMacro3D(tinyConfig(), opt);
  // Sign-off frequency equals the target (or the max-achievable if faster).
  EXPECT_NEAR(out.metrics.fclkMhz, 1000.0 / 6.0, 1000.0 / 6.0 * 0.02);
}

TEST(Flows, DeterministicMetrics) {
  const FlowOutput a = runFlowMacro3D(tinyConfig(), fastOptions());
  const FlowOutput b = runFlowMacro3D(tinyConfig(), fastOptions());
  EXPECT_DOUBLE_EQ(a.metrics.fclkMhz, b.metrics.fclkMhz);
  EXPECT_DOUBLE_EQ(a.metrics.totalWirelengthM, b.metrics.totalWirelengthM);
  EXPECT_EQ(a.metrics.f2fBumps, b.metrics.f2fBumps);
}

TEST(Flows, TraceDescribesSteps) {
  const FlowOutput out = runFlowMacro3D(tinyConfig(), fastOptions());
  EXPECT_NE(out.trace.find("step1"), std::string::npos);
  EXPECT_NE(out.trace.find("step2"), std::string::npos);
  EXPECT_NE(out.trace.find("F2F_VIA"), std::string::npos);
  EXPECT_NE(out.trace.find("step4"), std::string::npos);
}

}  // namespace
}  // namespace m3d
