// Ad-hoc probe: what does the critical path look like in each flow?
#include <iostream>

#include "core/macro3d.hpp"
#include "flows/case_study.hpp"
#include "flows/flows.hpp"

using namespace m3d;

void report(const char* name, const FlowOutput& out) {
  Sta sta(out.tile->netlist, out.paras, &out.clock);
  const double t = sta.findMinPeriod();
  const TimingReport rep = sta.analyze(t);
  std::cout << "== " << name << " minT=" << t * 1e9 << "ns endpoint=" << rep.critEndpointName
            << " steps=" << rep.criticalPath.size()
            << " wl_um=" << rep.critPathWirelengthUm << "\n";
  const Netlist& nl = out.tile->netlist;
  double prev = 0.0;
  for (const PathStep& s : rep.criticalPath) {
    std::string label;
    if (s.pin.kind == NetPin::Kind::kPort) {
      label = "port:" + nl.port(s.pin.port).name;
    } else {
      label = nl.instance(s.pin.inst).name + "/" +
              nl.cellOf(s.pin.inst).pins[static_cast<std::size_t>(s.pin.libPin)].name +
              " (" + nl.cellOf(s.pin.inst).name + ")";
    }
    std::cout << "   " << label << " arr=" << s.arrival * 1e12
              << "ps  +" << (s.arrival - prev) * 1e12 << "\n";
    prev = s.arrival;
  }
}

int main() {
  TileConfig cfg = makeSmallCacheTileConfig();
  const FlowOutput d2 = runFlow2D(cfg);
  report("2D", d2);
  const FlowOutput m3 = runFlowMacro3D(cfg);
  report("Macro-3D", m3);
  return 0;
}
