#include <gtest/gtest.h>

#include "lib/stdcell_factory.hpp"
#include "netlist/netlist.hpp"
#include "power/power.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class PowerFixture : public ::testing::Test {
 protected:
  PowerFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  /// Two-inverter chain with hand-made parasitics.
  void build() {
    const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
    const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);
    a_ = nl_.addInstance("a", lib_.findCell("INV_X1"));
    b_ = nl_.addInstance("b", lib_.findCell("INV_X1"));
    const NetId n0 = nl_.addNet("n0");
    const NetId n1 = nl_.addNet("n1");
    const NetId n2 = nl_.addNet("n2");
    nl_.connectPort(n0, in);
    nl_.connect(n0, a_, "A");
    nl_.connect(n1, a_, "Y");
    nl_.connect(n1, b_, "A");
    nl_.connect(n2, b_, "Y");
    nl_.connectPort(n2, out);

    paras_.assign(3, NetParasitics{});
    for (int n = 0; n < 3; ++n) {
      paras_[static_cast<std::size_t>(n)].wireCap = 10e-15;
      paras_[static_cast<std::size_t>(n)].pinCap = 2e-15;
    }
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  InstId a_ = kInvalidId;
  InstId b_ = kInvalidId;
  std::vector<NetParasitics> paras_;
};

TEST_F(PowerFixture, AnalyticTotals) {
  build();
  const double vdd = 0.9;
  const double f = 1e9;
  const PowerReport rep = analyzePower(nl_, paras_, vdd, f);

  // Switching: 3 nets x 0.5 * 0.2 * 12fF * 0.81 V^2.
  const double swE = 3.0 * 0.5 * 0.2 * 12e-15 * vdd * vdd;
  EXPECT_NEAR(rep.switchingW, swE * f, 1e-9);

  // Internal: 2 INV_X1 at alpha 0.2.
  const double intE = 2.0 * 0.2 * lib_.cell(lib_.findCell("INV_X1")).energyPerToggle;
  EXPECT_NEAR(rep.internalW, intE * f, 1e-9);

  // Leakage: 2 INV_X1.
  EXPECT_NEAR(rep.leakageW, 2.0 * lib_.cell(lib_.findCell("INV_X1")).leakage, 1e-12);

  EXPECT_NEAR(rep.totalW, rep.switchingW + rep.internalW + rep.leakageW, 1e-12);
  EXPECT_NEAR(rep.energyPerCycle, swE + intE + rep.leakageW / f, 1e-20);

  EXPECT_NEAR(rep.caps.wireCapTotal, 30e-15, 1e-20);
  EXPECT_NEAR(rep.caps.pinCapTotal, 6e-15, 1e-20);
}

TEST_F(PowerFixture, ClockNetsToggleTwicePerCycle) {
  build();
  nl_.net(1).isClock = true;
  const PowerReport rep = analyzePower(nl_, paras_, 0.9, 1e9);
  // Net 1 now at alpha 2.0 instead of 0.2; instance 'a' drives it -> its
  // internal power also scales to the clock rate.
  const double swE = (2.0 * 0.2 + 2.0) * 0.5 * 12e-15 * 0.81;
  EXPECT_NEAR(rep.switchingW, swE * 1e9, 1e-9);
  const double e = lib_.cell(lib_.findCell("INV_X1")).energyPerToggle;
  EXPECT_NEAR(rep.internalW, (2.0 * e + 0.2 * e) * 1e9, 1e-9);
}

TEST_F(PowerFixture, EnergyPerCycleIndependentOfFrequencyExceptLeakage) {
  build();
  const PowerReport r1 = analyzePower(nl_, paras_, 0.9, 1e9);
  const PowerReport r2 = analyzePower(nl_, paras_, 0.9, 2e9);
  // Dynamic energy/cycle identical; leakage part halves at 2x frequency.
  const double dyn1 = r1.energyPerCycle - r1.leakageW / 1e9;
  const double dyn2 = r2.energyPerCycle - r2.leakageW / 2e9;
  EXPECT_NEAR(dyn1, dyn2, 1e-21);
  EXPECT_GT(r1.energyPerCycle, r2.energyPerCycle);
}

TEST_F(PowerFixture, VoltageQuadratic) {
  build();
  const PowerReport lo = analyzePower(nl_, paras_, 0.8, 1e9);
  const PowerReport hi = analyzePower(nl_, paras_, 1.0, 1e9);
  EXPECT_NEAR(hi.switchingW / lo.switchingW, (1.0 * 1.0) / (0.8 * 0.8), 1e-9);
}

}  // namespace
}  // namespace m3d
