#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"

namespace m3d::par {
namespace {

/// Scoped M3D_THREADS override; restores the previous state on destruction.
class EnvThreads {
 public:
  explicit EnvThreads(const char* value) {
    if (const char* old = std::getenv("M3D_THREADS")) {
      saved_ = old;
      had_ = true;
    }
    if (value) {
      setenv("M3D_THREADS", value, 1);
    } else {
      unsetenv("M3D_THREADS");
    }
  }
  ~EnvThreads() {
    if (had_) {
      setenv("M3D_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("M3D_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(Parallel, EmptyRangeCallsNothing) {
  std::atomic<int> calls{0};
  parallelFor(5, 5, 1, [&](std::int64_t) { ++calls; }, 4);
  parallelFor(7, 3, 1, [&](std::int64_t) { ++calls; }, 4);  // inverted range
  parallelForChunks(0, 0, 16, [&](std::int64_t, std::int64_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, GrainLargerThanRangeIsOneChunk) {
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallelForChunks(
      3, 13, 100, [&](std::int64_t lo, std::int64_t hi) { chunks.push_back({lo, hi}); }, 4);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 3);
  EXPECT_EQ(chunks[0].second, 13);
}

TEST(Parallel, ChunkDecompositionIsPureFunctionOfRange) {
  // Same (range, grain) must yield the same chunk set at any thread count.
  auto chunksAt = [](int threads) {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    std::mutex mu;
    parallelForChunks(
        0, 103, 10,
        [&](std::int64_t lo, std::int64_t hi) {
          std::lock_guard<std::mutex> lock(mu);
          out.push_back({lo, hi});
        },
        threads);
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto seq = chunksAt(1);
  ASSERT_EQ(seq.size(), 11u);  // ceil(103 / 10)
  EXPECT_EQ(seq, chunksAt(2));
  EXPECT_EQ(seq, chunksAt(8));
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallelFor(0, kN, 64, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; }, 8);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ExceptionPropagatesAndPoolSurvives) {
  auto boom = [] {
    parallelFor(
        0, 1000, 1,
        [](std::int64_t i) {
          if (i == 421) throw std::runtime_error("chunk failure");
        },
        8);
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> calls{0};
  parallelFor(0, 100, 1, [&](std::int64_t) { ++calls; }, 8);
  EXPECT_EQ(calls.load(), 100);
}

TEST(Parallel, NestedCallsRunInlineWithoutDeadlock) {
  std::atomic<int> total{0};
  parallelFor(
      0, 16, 1,
      [&](std::int64_t) {
        EXPECT_TRUE(inParallelRegion());
        // Nested call: must complete inline on this thread.
        parallelFor(0, 50, 8, [&](std::int64_t) { ++total; }, 8);
      },
      4);
  EXPECT_EQ(total.load(), 16 * 50);
  EXPECT_FALSE(inParallelRegion());
}

TEST(Parallel, EnvOverrideForcesSequentialFallback) {
  EnvThreads env("1");
  EXPECT_EQ(envThreadOverride(), 1);
  EXPECT_EQ(resolveThreads(0), 1);
  // With the override active an auto-threaded loop runs entirely on the
  // calling thread (slot 0), in ascending order.
  std::vector<std::int64_t> seen;
  parallelFor(0, 100, 7, [&](std::int64_t i) {
    EXPECT_EQ(currentSlot(), 0);
    seen.push_back(i);
  });
  ASSERT_EQ(seen.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(Parallel, ThreadResolutionPrecedence) {
  {
    EnvThreads env("3");
    EXPECT_EQ(resolveThreads(0), 3);  // env wins over hardware
    EXPECT_EQ(resolveThreads(2), 2);  // explicit request wins over env
  }
  {
    EnvThreads env(nullptr);
    EXPECT_EQ(envThreadOverride(), 0);
    EXPECT_EQ(resolveThreads(0), hardwareConcurrency());
  }
  {
    EnvThreads env("not_a_number");
    EXPECT_EQ(envThreadOverride(), 0);
  }
  {
    EnvThreads env("0");
    EXPECT_EQ(envThreadOverride(), 0);
  }
  EXPECT_EQ(resolveThreads(kMaxThreads + 100), kMaxThreads);  // clamp
}

TEST(Parallel, WorkerSlotsAreInBounds) {
  std::atomic<bool> ok{true};
  parallelFor(
      0, 2000, 1,
      [&](std::int64_t) {
        const int slot = currentSlot();
        if (slot < 0 || slot >= maxSlots()) ok = false;
      },
      8);
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(currentSlot(), 0);  // caller slot outside regions
}

TEST(Parallel, ReduceFoldsPartialsInChunkOrder) {
  // Concatenation is order-sensitive: the fold must walk chunks ascending.
  const std::string s = parallelReduce<std::string>(
      0, 26, 5, std::string{},
      [](std::int64_t lo, std::int64_t hi) {
        std::string part;
        for (std::int64_t i = lo; i < hi; ++i) part.push_back(static_cast<char>('a' + i));
        return part;
      },
      [](std::string acc, std::string part) { return acc + part; }, 8);
  EXPECT_EQ(s, "abcdefghijklmnopqrstuvwxyz");
}

TEST(Parallel, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Floating-point sum: non-associative, so bit-identity across thread
  // counts only holds because chunking and fold order are fixed.
  auto sumAt = [](int threads) {
    return parallelReduce<double>(
        0, 100000, 1024, 0.0,
        [](std::int64_t lo, std::int64_t hi) {
          double s = 0.0;
          for (std::int64_t i = lo; i < hi; ++i) s += 1.0 / static_cast<double>(i + 1);
          return s;
        },
        [](double a, double b) { return a + b; }, threads);
  };
  const double s1 = sumAt(1);
  EXPECT_EQ(s1, sumAt(2));
  EXPECT_EQ(s1, sumAt(8));
}

TEST(Parallel, ReduceEmptyRangeReturnsInit) {
  const int r = parallelReduce<int>(
      10, 10, 4, 42, [](std::int64_t, std::int64_t) { return 7; },
      [](int a, int b) { return a + b; }, 4);
  EXPECT_EQ(r, 42);
}

}  // namespace
}  // namespace m3d::par
