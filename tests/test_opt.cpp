#include <gtest/gtest.h>

#include "lib/stdcell_factory.hpp"
#include "netlist/logic_cloud.hpp"
#include "opt/net_buffering.hpp"
#include "opt/optimizer.hpp"
#include "sta/sta.hpp"
#include "tech/tech_node.hpp"

namespace m3d {
namespace {

class OptFixture : public ::testing::Test {
 public:
  OptFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}

  /// reg -> chain of INVs with a long wire in the middle -> reg.
  void buildWirePath(double wireUm) {
    const NetId clk = nl_.addNet("clk");
    const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
    nl_.connectPort(clk, clkPort);
    const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
    const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);

    const InstId d1 = nl_.addInstance("d1", lib_.findCell("DFF_X1"));
    const InstId d2 = nl_.addInstance("d2", lib_.findCell("DFF_X1"));
    nl_.connect(clk, d1, "CK");
    nl_.connect(clk, d2, "CK");
    nl_.instance(d1).pos = Point{0, 0};
    nl_.instance(d2).pos = Point{umToDbu(wireUm), 0};

    const NetId nin = nl_.addNet("nin");
    nl_.connectPort(nin, in);
    nl_.connect(nin, d1, "D");

    const InstId g = nl_.addInstance("g", lib_.findCell("INV_X1"));
    nl_.instance(g).pos = Point{umToDbu(2), 0};
    longNet_ = nl_.addNet("long");
    const NetId q1 = nl_.addNet("q1");
    nl_.connect(q1, d1, "Q");
    nl_.connect(q1, g, "A");
    nl_.connect(longNet_, g, "Y");
    nl_.connect(longNet_, d2, "D");

    const NetId q2 = nl_.addNet("q2");
    nl_.connect(q2, d2, "Q");
    nl_.connectPort(q2, out);

    fp_.die = Rect{0, 0, umToDbu(wireUm + 20), snapUp(umToDbu(100), tech_.rowHeight)};
    fp_.rowHeight = tech_.rowHeight;
    fp_.siteWidth = tech_.siteWidth;
    assignPorts(nl_, fp_.die);
    ASSERT_TRUE(nl_.validate().empty()) << nl_.validate();
  }

  TechNode tech_;
  Library lib_;
  Netlist nl_;
  Floorplan fp_;
  NetId longNet_ = kInvalidId;
};

TEST_F(OptFixture, SizingImprovesWns) {
  buildWirePath(200.0);
  EstimationOptions eopt = makeEstimationOptions(tech_.beol);
  EstimatedParasitics provider(eopt);
  auto paras = estimateDesign(nl_, eopt);

  const double before = Sta(nl_, paras).findMinPeriod();
  OptimizerOptions opt;
  opt.targetPeriod = before * 0.5;
  const OptimizeResult r = optimizeTiming(nl_, paras, provider, nullptr, opt);
  const double after = Sta(nl_, paras).findMinPeriod();
  EXPECT_GT(r.cellsResized + r.buffersInserted, 0);
  EXPECT_LT(after, before);
  EXPECT_GT(r.finalWns, r.initialWns);
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();
}

TEST_F(OptFixture, BufferingSplitsLongNet) {
  buildWirePath(400.0);
  EstimationOptions eopt = makeEstimationOptions(tech_.beol);
  EstimatedParasitics provider(eopt);
  auto paras = estimateDesign(nl_, eopt);

  OptimizerOptions opt;
  opt.targetPeriod = 100e-12;  // unreachable: force aggressive work
  opt.maxPasses = 10;
  const OptimizeResult r = optimizeTiming(nl_, paras, provider, nullptr, opt);
  EXPECT_GT(r.buffersInserted, 0);
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();
  // Parasitics vector tracked netlist growth.
  EXPECT_EQ(static_cast<int>(paras.size()), nl_.numNets());
}

TEST_F(OptFixture, RoutedProviderRefusesBuffering) {
  buildWirePath(100.0);
  // RoutedParasitics::allowBuffering is false; verify via the interface.
  EstimationOptions eopt;
  EstimatedParasitics est(eopt);
  EXPECT_TRUE(est.allowBuffering());
}

TEST_F(OptFixture, MaxFrequencyLoopConverges) {
  buildWirePath(250.0);
  EstimationOptions eopt = makeEstimationOptions(tech_.beol);
  EstimatedParasitics provider(eopt);
  auto paras = estimateDesign(nl_, eopt);
  const double before = Sta(nl_, paras).findMinPeriod();
  const MaxFreqOptResult r = optimizeForMaxFrequency(nl_, paras, provider, nullptr,
                                                     OptimizerOptions{}, 4);
  EXPECT_LE(r.minPeriod, before);
  EXPECT_GE(r.rounds, 1);
}

TEST_F(OptFixture, OptimizerIsDeterministic) {
  buildWirePath(300.0);
  EstimationOptions eopt = makeEstimationOptions(tech_.beol);
  auto run = [&](Netlist& nl) {
    EstimatedParasitics provider(eopt);
    auto paras = estimateDesign(nl, eopt);
    OptimizerOptions opt;
    opt.targetPeriod = 200e-12;
    const OptimizeResult r = optimizeTiming(nl, paras, provider, nullptr, opt);
    return std::tuple{r.cellsResized, r.buffersInserted, Sta(nl, paras).findMinPeriod()};
  };
  const auto r1 = run(nl_);

  // An independent, identically constructed problem.
  Library lib2 = makeStdCellLib(tech_);
  Netlist savedNl = std::move(nl_);
  nl_ = Netlist(&lib2);
  buildWirePath(300.0);
  const auto r2 = run(nl_);
  nl_ = std::move(savedNl);
  EXPECT_EQ(r1, r2);
}

// ---------------------------------------------------------------------------

class NetBufferingFixture : public ::testing::Test {
 protected:
  NetBufferingFixture() : tech_(makeTech28(6)), lib_(makeStdCellLib(tech_)), nl_(&lib_) {}
  TechNode tech_;
  Library lib_;
  Netlist nl_;
};

TEST_F(NetBufferingFixture, ShortNetsUntouched) {
  const InstId a = nl_.addInstance("a", lib_.findCell("INV_X1"));
  const InstId b = nl_.addInstance("b", lib_.findCell("INV_X1"));
  nl_.instance(a).pos = Point{0, 0};
  nl_.instance(b).pos = Point{umToDbu(20), 0};
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  // close the dangling pins
  const NetId n2 = nl_.addNet("n2");
  const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
  nl_.connectPort(n2, in);
  nl_.connect(n2, a, "A");
  const NetId n3 = nl_.addNet("n3");
  const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);
  nl_.connect(n3, b, "Y");
  nl_.connectPort(n3, out);

  Floorplan fp;
  fp.die = Rect{0, 0, umToDbu(500), snapUp(umToDbu(500), tech_.rowHeight)};
  fp.rowHeight = tech_.rowHeight;
  fp.siteWidth = tech_.siteWidth;

  const NetBufferingResult r = bufferLongNets(nl_, fp);
  EXPECT_EQ(r.buffersInserted, 0);
}

TEST_F(NetBufferingFixture, LongNetGetsRepeaterChain) {
  const InstId a = nl_.addInstance("a", lib_.findCell("INV_X1"));
  const InstId b = nl_.addInstance("b", lib_.findCell("INV_X1"));
  nl_.instance(a).pos = Point{0, 0};
  nl_.instance(b).pos = Point{umToDbu(450), 0};
  const NetId n = nl_.addNet("n");
  nl_.connect(n, a, "Y");
  nl_.connect(n, b, "A");
  const NetId n2 = nl_.addNet("n2");
  const PortId in = nl_.addPort("in", PinDir::kInput, Side::kWest);
  nl_.connectPort(n2, in);
  nl_.connect(n2, a, "A");
  const NetId n3 = nl_.addNet("n3");
  const PortId out = nl_.addPort("out", PinDir::kOutput, Side::kEast);
  nl_.connect(n3, b, "Y");
  nl_.connectPort(n3, out);

  Floorplan fp;
  fp.die = Rect{0, 0, umToDbu(500), snapUp(umToDbu(500), tech_.rowHeight)};
  fp.rowHeight = tech_.rowHeight;
  fp.siteWidth = tech_.siteWidth;

  NetBufferingOptions opt;
  opt.maxLength = umToDbu(100);
  const NetBufferingResult r = bufferLongNets(nl_, fp, opt);
  EXPECT_GE(r.buffersInserted, 2);  // 450um span at <=100um hops
  EXPECT_TRUE(nl_.validate().empty()) << nl_.validate();
  // After buffering, every driver->sink hop is bounded (within slack of the
  // 40% pull plus clamping).
  for (NetId net = 0; net < nl_.numNets(); ++net) {
    const Net& nn = nl_.net(net);
    if (nn.pins.size() < 2 || nn.driverIdx < 0 || nn.isClock) continue;
    const Point drv = nl_.pinPosition(nn.pins[static_cast<std::size_t>(nn.driverIdx)]);
    for (const auto& p : nn.pins) {
      EXPECT_LE(manhattanDistance(drv, nl_.pinPosition(p)), umToDbu(200)) << nn.name;
    }
  }
}

TEST_F(NetBufferingFixture, ClockNetsAreNeverBuffered) {
  const InstId d1 = nl_.addInstance("d1", lib_.findCell("DFF_X1"));
  const InstId d2 = nl_.addInstance("d2", lib_.findCell("DFF_X1"));
  nl_.instance(d1).pos = Point{0, 0};
  nl_.instance(d2).pos = Point{umToDbu(450), 0};
  const NetId clk = nl_.addNet("clk");
  const PortId clkPort = nl_.addPort("clk", PinDir::kInput, Side::kWest, true);
  nl_.connectPort(clk, clkPort);
  nl_.connect(clk, d1, "CK");
  nl_.connect(clk, d2, "CK");

  Floorplan fp;
  fp.die = Rect{0, 0, umToDbu(500), snapUp(umToDbu(500), tech_.rowHeight)};
  fp.rowHeight = tech_.rowHeight;
  fp.siteWidth = tech_.siteWidth;

  NetBufferingOptions opt;
  opt.maxLength = umToDbu(50);
  const std::size_t clkPins = nl_.net(clk).pins.size();
  bufferLongNets(nl_, fp, opt);
  EXPECT_EQ(nl_.net(clk).pins.size(), clkPins);
}

}  // namespace
}  // namespace m3d
