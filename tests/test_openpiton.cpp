#include <gtest/gtest.h>

#include <map>

#include "flows/case_study.hpp"
#include "netlist/openpiton.hpp"

namespace m3d {
namespace {

/// Reduced tile for fast tests (same structure, smaller clouds/caches).
TileConfig miniConfig() {
  TileConfig cfg;
  cfg.name = "mini";
  cfg.cache = CacheConfig{2, 2, 4, 16};
  cfg.coreGates = 500;
  cfg.coreRegs = 100;
  cfg.l1CtrlGates = 60;
  cfg.l1CtrlRegs = 14;
  cfg.l2CtrlGates = 90;
  cfg.l2CtrlRegs = 20;
  cfg.l3CtrlGates = 120;
  cfg.l3CtrlRegs = 24;
  cfg.nocGates = 80;
  cfg.nocRegs = 20;
  cfg.nocDataBits = 4;
  return cfg;
}

TEST(OpenPiton, MiniTileIsValid) {
  const TechNode tech = makeCaseStudyTech();
  Library lib = makeStdCellLib(tech);
  const Tile tile = generateTile(lib, tech, miniConfig());
  EXPECT_TRUE(tile.netlist.validate().empty()) << tile.netlist.validate();
  EXPECT_GT(tile.groups.macros.size(), 0u);
  EXPECT_NE(tile.groups.clockNet, kInvalidId);
}

TEST(OpenPiton, MacroAreaDominatesEvenForSmallCaches) {
  // Paper Sec. V: "even for the small cache sizes, memory macros occupy more
  // than 50% of the substrate area".
  const TechNode tech = makeCaseStudyTech();
  Library lib = makeStdCellLib(tech);
  const Tile tile = generateTile(lib, tech, makeSmallCacheTileConfig());
  const NetlistStats stats = computeStats(tile.netlist);
  EXPECT_GT(stats.macroAreaFraction(), 0.5);
  EXPECT_GT(stats.numMacros, 10);
  EXPECT_GT(stats.numStdCells, 5000);
}

TEST(OpenPiton, LargeCacheHasMoreMacroArea) {
  const TechNode tech = makeCaseStudyTech();
  Library libS = makeStdCellLib(tech);
  Library libL = makeStdCellLib(tech);
  const Tile small = generateTile(libS, tech, makeSmallCacheTileConfig());
  const Tile large = generateTile(libL, tech, makeLargeCacheTileConfig());
  const NetlistStats ss = computeStats(small.netlist);
  const NetlistStats sl = computeStats(large.netlist);
  EXPECT_GT(sl.macroArea, 2 * ss.macroArea);
  EXPECT_GT(sl.stdCellArea, ss.stdCellArea);
}

TEST(OpenPiton, ClockReachesAllSequentialsAndMacros) {
  const TechNode tech = makeCaseStudyTech();
  Library lib = makeStdCellLib(tech);
  const Tile tile = generateTile(lib, tech, miniConfig());
  const Netlist& nl = tile.netlist;
  const NetId clk = tile.groups.clockNet;
  int clockSinks = 0;
  for (const NetPin& p : nl.net(clk).pins) {
    if (p.kind != NetPin::Kind::kInstPin) continue;
    EXPECT_TRUE(nl.cellOf(p.inst).pins[static_cast<std::size_t>(p.libPin)].isClock);
    ++clockSinks;
  }
  int seqCells = 0;
  for (InstId i = 0; i < nl.numInstances(); ++i) {
    const CellType& c = nl.cellOf(i);
    if (c.isSequential() || c.isMacro()) ++seqCells;
  }
  EXPECT_EQ(clockSinks, seqCells);
}

TEST(OpenPiton, InterTilePortPairingIsComplete) {
  const TechNode tech = makeCaseStudyTech();
  Library lib = makeStdCellLib(tech);
  const TileConfig cfg = miniConfig();
  const Tile tile = generateTile(lib, tech, cfg);
  const Netlist& nl = tile.netlist;

  std::map<int, std::vector<PortId>> byTag;
  int halfCycle = 0;
  for (PortId p = 0; p < nl.numPorts(); ++p) {
    const Port& port = nl.port(p);
    if (port.pairTag >= 0) byTag[port.pairTag].push_back(p);
    if (port.halfCycle) ++halfCycle;
  }
  // 3 NoCs x 4 link directions x width, one pair each (paper Sec. V-1).
  EXPECT_EQ(static_cast<int>(byTag.size()), cfg.numNocs * 4 * cfg.nocDataBits);
  EXPECT_EQ(halfCycle, 2 * cfg.numNocs * 4 * cfg.nocDataBits);
  for (const auto& [tag, ports] : byTag) {
    ASSERT_EQ(ports.size(), 2u) << "tag " << tag;
    const Port& a = nl.port(ports[0]);
    const Port& b = nl.port(ports[1]);
    // One output, one input, on opposite sides.
    EXPECT_NE(a.dir == PinDir::kOutput, b.dir == PinDir::kOutput);
    EXPECT_EQ(a.side, oppositeSide(b.side));
    EXPECT_TRUE(a.halfCycle && b.halfCycle);
  }
}

TEST(OpenPiton, DeterministicGeneration) {
  const TechNode tech = makeCaseStudyTech();
  auto fingerprint = [&]() {
    Library lib = makeStdCellLib(tech);
    const Tile t = generateTile(lib, tech, miniConfig());
    std::int64_t pins = 0;
    for (NetId n = 0; n < t.netlist.numNets(); ++n) {
      pins += static_cast<std::int64_t>(t.netlist.net(n).pins.size());
    }
    return std::tuple{t.netlist.numInstances(), t.netlist.numNets(), t.netlist.numPorts(), pins};
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(OpenPiton, SeedChangesNetlistButNotStructure) {
  const TechNode tech = makeCaseStudyTech();
  Library lib1 = makeStdCellLib(tech);
  Library lib2 = makeStdCellLib(tech);
  TileConfig a = miniConfig();
  TileConfig b = miniConfig();
  b.seed = 0xDEADBEEF;
  const Tile ta = generateTile(lib1, tech, a);
  const Tile tb = generateTile(lib2, tech, b);
  // Same port/macro structure regardless of seed.
  EXPECT_EQ(ta.netlist.numPorts(), tb.netlist.numPorts());
  EXPECT_EQ(ta.groups.macros.size(), tb.groups.macros.size());
  EXPECT_TRUE(tb.netlist.validate().empty());
}

TEST(OpenPiton, PaperCacheConfigs) {
  const TileConfig small = makeSmallCacheTileConfig();
  EXPECT_EQ(small.cache.l1iKb, 8);
  EXPECT_EQ(small.cache.l1dKb, 16);
  EXPECT_EQ(small.cache.l2Kb, 16);
  EXPECT_EQ(small.cache.l3Kb, 256);
  const TileConfig large = makeLargeCacheTileConfig();
  EXPECT_EQ(large.cache.l1iKb, 16);
  EXPECT_EQ(large.cache.l2Kb, 128);
  EXPECT_EQ(large.cache.l3Kb, 1024);
}

TEST(OpenPiton, GroupsPartitionStdCells) {
  const TechNode tech = makeCaseStudyTech();
  Library lib = makeStdCellLib(tech);
  const Tile tile = generateTile(lib, tech, miniConfig());
  const std::size_t grouped = tile.groups.coreCells.size() + tile.groups.cacheCtrlCells.size() +
                              tile.groups.nocCells.size() + tile.groups.macros.size();
  EXPECT_GT(tile.groups.coreCells.size(), 0u);
  EXPECT_GT(tile.groups.cacheCtrlCells.size(), 0u);
  EXPECT_GT(tile.groups.nocCells.size(), 0u);
  EXPECT_LE(static_cast<int>(grouped), tile.netlist.numInstances());
}

}  // namespace
}  // namespace m3d
